"""Serving load generator: mixed verb streams with latency budgets (E14).

``python -m repro bench --load`` replays a deterministic mixed verb stream
(puts, deletes, point reads, samples) against both serve fronts over real
localhost TCP and records **client-observed per-verb latency histograms**
— the numbers a deployment's SLOs are written against, as opposed to the
server-side ``repro_verb_latency_ns`` series, which exclude transport and
scheduling.  Each run appends per-``(front, verb)`` rows to
``BENCH_E14.json`` (p50/p99/p999 from the same log-bucketed
:class:`~repro.obs.metrics.Histogram` the server uses) and is gated by
loose absolute budgets — order-of-magnitude tripwires that catch a
pathological serving regression without being machine-sensitive.

Traffic shape:

- ``clients`` concurrent connections against the asyncio front, each in
  strict request/reply lockstep (latency is per-op round trip, not
  pipelined throughput — that is E12's row); the synchronous front serves
  the same scripts over one connection, since one connection is all it
  multiplexes.
- Each client owns a disjoint key slice of the preloaded population, so
  every generated ``put``/``del``/``get`` is valid by construction and an
  ``ERR`` reply is a real serving defect (counted, budgeted at zero).
- After the stream, the generator scrapes the server's ``metrics`` verb
  and returns the exposition text — the artifact CI uploads.
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading

from ..obs.metrics import Histogram, MetricsRegistry, time_ns
from .bench import append_run

#: Serve fronts a load run can target.
FRONTS = ("sync", "async")

#: Verbs in the generated stream (weights in ``_make_plans``).
VERBS = ("put", "get", "del", "query")

#: Loose absolute per-verb budgets on client-observed latency: an op's
#: p50 over localhost TCP is O(100us), so these only trip on an
#: order-of-magnitude regression (or a stall), never on machine noise.
BUDGET_P50_NS = 25_000_000    # 25 ms
BUDGET_P99_NS = 250_000_000   # 250 ms


def _make_plans(
    ops: int, clients: int, n: int, seed: int
) -> list[list[tuple[str, str]]]:
    """Per-client op scripts ``[(verb, request line), ...]``.

    Client ``c`` owns keys ``c, c + clients, c + 2*clients, ...`` of the
    preloaded ``range(n)`` population, and tracks which of them are
    present, so concurrent clients can never invalidate each other's
    strict ``get``/``del``/``insert`` semantics.
    """
    plans = []
    per_client = max(1, ops // clients)
    for c in range(clients):
        rng = random.Random(seed * 7919 + 31 * c + 1)
        owned = list(range(c, n, clients))
        if not owned:
            continue
        present = set(owned)
        avail = list(owned)
        script: list[tuple[str, str]] = []
        for _ in range(per_client):
            roll = rng.random()
            if roll < 0.25 and avail:
                key = avail[rng.randrange(len(avail))]
                script.append(("get", f"get {key}"))
            elif roll < 0.50:
                script.append(("query", "query 1 0"))
            elif roll < 0.60 and len(avail) > 1:
                index = rng.randrange(len(avail))
                key = avail[index]
                avail[index] = avail[-1]
                avail.pop()
                present.discard(key)
                script.append(("del", f"del {key}"))
            else:
                key = owned[rng.randrange(len(owned))]
                if key not in present:
                    present.add(key)
                    avail.append(key)
                weight = rng.randint(1, (1 << 20) - 1)
                script.append(("put", f"put {key} {weight}"))
        plans.append(script)
    return plans


def _build_service(n: int, num_shards: int, seed: int):
    from ..service import SamplingService, ServiceConfig

    rng = random.Random(seed)
    service = SamplingService(
        ServiceConfig(num_shards=num_shards, backend="halt", seed=seed),
        registry=MetricsRegistry(),
    )
    service.submit([
        ("insert", key, rng.randint(1, (1 << 20) - 1)) for key in range(n)
    ])
    service.flush()
    return service


def _split_scrape(data: bytes) -> str:
    """The exposition text out of a ``metrics`` + ``quit`` tail read
    (everything before the final ``OK bye`` line)."""
    lines = data.decode().splitlines()
    return "\n".join(line for line in lines if line != "OK bye") + "\n"


def _drive_async(
    service, plans, hists: dict[str, Histogram], errors: dict[str, int]
) -> str:
    """All clients concurrently against the asyncio front; returns the
    post-stream metrics exposition."""
    from ..service.async_serve import AsyncLineServer

    async def run() -> str:
        server = await AsyncLineServer(service, port=0).start()
        host, port = server.address

        async def client(script: list[tuple[str, str]]) -> None:
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for verb, line in script:
                    start = time_ns()
                    writer.write(line.encode() + b"\n")
                    await writer.drain()
                    reply = await reader.readline()
                    hists[verb].observe(time_ns() - start)
                    if reply.startswith(b"ERR"):
                        errors[verb] += 1
                writer.write(b"quit\n")
                await writer.drain()
                await reader.read(-1)
            finally:
                writer.close()

        try:
            await asyncio.gather(*(client(script) for script in plans))
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"metrics\nquit\n")
            await writer.drain()
            data = await reader.read(-1)
            writer.close()
        finally:
            await server.aclose()
        return _split_scrape(data)

    return asyncio.run(run())


def _drive_sync(
    service, plans, hists: dict[str, Histogram], errors: dict[str, int]
) -> str:
    """The same scripts through the blocking serve loop over one TCP
    connection (strict request/reply); returns the metrics exposition."""
    from ..service.serve_loop import serve_loop

    listener = socket.create_server(("127.0.0.1", 0))
    _, port = listener.getsockname()[:2]

    def serve_one() -> None:
        conn, _ = listener.accept()
        with conn, conn.makefile("r") as rf, conn.makefile("w") as wf:
            serve_loop(service, rf, wf)

    server = threading.Thread(target=serve_one)
    server.start()
    client = socket.create_connection(("127.0.0.1", port))
    try:
        with client.makefile("rb") as replies:
            for script in plans:
                for verb, line in script:
                    start = time_ns()
                    client.sendall(line.encode() + b"\n")
                    reply = replies.readline()
                    hists[verb].observe(time_ns() - start)
                    if reply.startswith(b"ERR"):
                        errors[verb] += 1
            client.sendall(b"metrics\nquit\n")
            data = replies.read()
    finally:
        client.close()
        server.join()
        listener.close()
    return _split_scrape(data)


_DRIVERS = {"sync": _drive_sync, "async": _drive_async}


def budget_failures(rows: list[dict]) -> list[str]:
    """The zero-ERR + absolute-latency gate over E14 result rows.

    One message per violation, each naming the ``front/verb`` it came
    from: any ERR reply trips the gate (the generated streams are valid,
    so a single ERR is a server bug, not noise), as does a p50/p99 over
    the absolute budgets.  Split out from :func:`run_load` so the
    accounting is testable without a TCP server.
    """
    failures = []
    for row in rows:
        where = f"{row['front']}/{row['verb']}"
        if row["errors"]:
            failures.append(f"{where}: {row['errors']} ERR replies")
        if row["p50_ns"] > BUDGET_P50_NS:
            failures.append(
                f"{where}: p50 {row['p50_ns']}ns over budget {BUDGET_P50_NS}ns"
            )
        if row["p99_ns"] > BUDGET_P99_NS:
            failures.append(
                f"{where}: p99 {row['p99_ns']}ns over budget {BUDGET_P99_NS}ns"
            )
    return failures


def run_load(
    ops: int = 4_000,
    clients: int = 8,
    n: int = 20_000,
    num_shards: int = 4,
    seed: int = 5,
    fronts: tuple[str, ...] = FRONTS,
    directory: str | None = None,
    record: bool = True,
    metrics_out: str | None = None,
) -> dict:
    """Run the mixed-verb load against each front; returns the summary.

    ``ops`` is the approximate op count per front (split across
    ``clients`` scripts).  The summary carries the per-``(front, verb)``
    result rows, the per-front exposition texts, and ``budget_failures``
    — one message per row violating the absolute budgets (empty = pass).
    When ``record`` is set the rows are appended to ``BENCH_E14.json``;
    ``metrics_out`` saves the scraped expositions to a file.
    """
    from .harness import print_table

    for front in fronts:
        if front not in _DRIVERS:
            raise ValueError(f"front must be one of {FRONTS}, got {front!r}")

    results = []
    expositions: dict[str, str] = {}
    for front in fronts:
        plans = _make_plans(ops, clients, n, seed)
        hists = {verb: Histogram() for verb in VERBS}
        errors = {verb: 0 for verb in VERBS}
        service = _build_service(n, num_shards, seed)
        try:
            expositions[front] = _DRIVERS[front](
                service, plans, hists, errors
            )
        finally:
            service.close()
        for verb in VERBS:
            hist = hists[verb]
            if not hist.count:
                continue
            summary = hist.summary()
            results.append({
                "front": front, "verb": verb, "clients": len(plans),
                "count": summary["count"],
                "mean_ns": round(summary["sum"] / summary["count"]),
                "p50_ns": summary["p50"], "p99_ns": summary["p99"],
                "p999_ns": summary["p999"], "errors": errors[verb],
            })

    failures = budget_failures(results)

    print_table(
        "bench load: E14 per-verb client-observed latency (us)",
        ["front", "verb", "count", "mean", "p50", "p99", "p999", "errors"],
        [
            [row["front"], row["verb"], row["count"],
             round(row["mean_ns"] / 1000), round(row["p50_ns"] / 1000),
             round(row["p99_ns"] / 1000), round(row["p999_ns"] / 1000),
             row["errors"]]
            for row in results
        ],
    )

    if metrics_out:
        with open(metrics_out, "w") as fh:
            for front in fronts:
                fh.write(f"# loadgen front={front}\n")
                fh.write(expositions[front])
        print(f"metrics exposition saved to {metrics_out}")
    if record:
        append_run("E14", "bench --load", results, directory)
    return {
        "e14": results,
        "expositions": expositions,
        "budget_failures": failures,
    }
