"""Statistics, scaling fits and the experiment harness."""

from .harness import geometric_sizes, print_table, time_call, time_total
from .scaling import growth_ratio, loglog_slope
from .stats import (
    chi_square_gof,
    chi_square_statistic,
    empirical_pmf,
    total_variation,
    wilson_interval,
)

__all__ = [
    "chi_square_gof",
    "chi_square_statistic",
    "empirical_pmf",
    "geometric_sizes",
    "growth_ratio",
    "loglog_slope",
    "print_table",
    "time_call",
    "time_total",
    "total_variation",
    "wilson_interval",
]
