"""Persisted benchmark trajectory: machine-readable E1/E3 records.

Every benchmark run (the full pytest experiments and the CLI's two-minute
smoke) appends a run record to ``BENCH_E1.json`` / ``BENCH_E3.json`` so the
repo carries its own performance history: a future PR diffs its numbers
against any earlier run instead of re-measuring a lost baseline.

File shape::

    {
      "experiment": "E1",
      "unit": "ns_per_op",
      "runs": [
        {"label": "...", "commit": "...",
         "results": [{"structure": "HALT", "n": 100000, "mu": 1.0,
                      "ns_per_op": 89107, "op": "query(1,0)",
                      "fastpath": false}, ...]},
        ...
      ]
    }

The first run in each file is the pre-fastpath baseline this trajectory
started from.
"""

from __future__ import annotations

import json
import os
import socket
import statistics
import subprocess
import time
from typing import Callable

BENCH_FILES = {
    "E1": "BENCH_E1.json",
    "E3": "BENCH_E3.json",
    "E12": "BENCH_E12.json",
    "E14": "BENCH_E14.json",
    "CODEC": "BENCH_CODEC.json",
}


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def bench_dir(explicit: str | None = None) -> str:
    """Where the BENCH_*.json files live: ``benchmarks/`` when present."""
    if explicit:
        return explicit
    candidate = os.path.join(os.getcwd(), "benchmarks")
    return candidate if os.path.isdir(candidate) else os.getcwd()


#: Unit of each experiment's result records (throughput vs latency).
BENCH_UNITS = {
    "E12": "ops_per_sec",
    "E14": "ns_latency",
    "CODEC": "ns_round_trip",
}


def load_runs(experiment: str, directory: str | None = None) -> dict:
    """The experiment's full record document (empty skeleton if absent)."""
    path = os.path.join(bench_dir(directory), BENCH_FILES[experiment])
    if os.path.exists(path):
        with open(path) as fh:
            return json.load(fh)
    return {
        "experiment": experiment,
        "unit": BENCH_UNITS.get(experiment, "ns_per_op"),
        "runs": [],
    }


def append_run(
    experiment: str,
    label: str,
    results: list[dict],
    directory: str | None = None,
) -> str:
    """Append one run record and rewrite the JSON file; returns its path."""
    doc = load_runs(experiment, directory)
    # Machine context travels with every run: a trajectory mixing laptops
    # and CI runners is only interpretable if each record says where it ran.
    doc["runs"].append({
        "label": label,
        "commit": _git_commit(),
        "cpus": os.cpu_count(),
        "host": socket.gethostname(),
        "results": results,
    })
    path = os.path.join(bench_dir(directory), BENCH_FILES[experiment])
    # Atomic rewrite: an interrupted dump must not corrupt the trajectory.
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    os.replace(tmp_path, path)
    return path


def baseline(experiment: str, directory: str | None = None) -> dict | None:
    """The first recorded run (the trajectory's origin), if any."""
    runs = load_runs(experiment, directory).get("runs", [])
    return runs[0] if runs else None


#: The E12 ``parallel_shards`` gate: worker-runtime shards must sustain at
#: least this multiple of the inline runtime's ops/sec on the same mixed
#: 90/10 stream — on a machine with >= 2 CPUs, where the per-shard fan-out
#: actually buys parallelism.  A single-CPU machine has no parallelism to
#: buy (the workers time-slice one core and pay framing on top), so there
#: the gate degrades to a sanity floor: the worker runtime must not cost
#: more than 4x inline.  The full >= 1.5x gate runs wherever CI runs.
PARALLEL_GATE_MULTICORE = 1.5
PARALLEL_GATE_SINGLE_CORE = 0.25


def parallel_shards_gate(cores: int) -> float:
    """The applicable ``parallel_shards`` speedup threshold (see above)."""
    return PARALLEL_GATE_MULTICORE if cores >= 2 else PARALLEL_GATE_SINGLE_CORE


def best_ns(fn: Callable[[], object], repeat: int, inner: int = 1) -> float:
    """Best-of wall time per call in nanoseconds (noise-robust)."""
    best: float | None = None
    for _ in range(repeat):
        start = time.perf_counter_ns()
        for _ in range(inner):
            fn()
        elapsed = (time.perf_counter_ns() - start) / inner
        if best is None or elapsed < best:
            best = elapsed
    return best if best is not None else 0.0


def run_smoke(
    directory: str | None = None,
    n: int = 100_000,
    record: bool = True,
) -> dict:
    """The two-minute bench smoke behind ``python -m repro bench --smoke``.

    Measures E1 query throughput (fast and exact engines, plus a reduced-n
    naive control) and E3 update cost, prints a table, appends the runs to
    the trajectory files, and returns a summary dict with the speedup
    against each trajectory's first (baseline) run.
    """
    import random

    from ..core.halt import HALT
    from ..core.naive import NaiveDPSS
    from ..randvar.bitsource import RandomBitSource
    from .harness import print_table

    rng = random.Random(1234)
    items = [(i, rng.randint(1, (1 << 24) - 1)) for i in range(n)]

    fast = HALT(items, source=RandomBitSource(7), fast=True)
    exact = HALT(items, source=RandomBitSource(7), fast=False)
    mu = float(fast.expected_sample_size(1, 0))

    for _ in range(30):
        fast.query(1, 0)
    fast_ns = best_ns(lambda: fast.query(1, 0), repeat=40, inner=10)
    exact_ns = best_ns(lambda: exact.query(1, 0), repeat=15, inner=3)

    # Observability overhead: the same single-query loop with the
    # process-wide instrumentation switch off — what every ``OBS.enabled``
    # guard + live counter on the query path costs; the E1 overhead gate
    # pins it under 3%.  The true cost is a fraction of a percent, so the
    # estimator must survive host noise larger than the gate: two long
    # back-to-back windows put all drift on the ratio, so instead take
    # the *median of per-pair ratios over many short alternating bursts*
    # (adjacent bursts see the same machine, so drift cancels pairwise),
    # alternating which state runs first in each pair (cache/frequency
    # ordering effects cancel too).  ~2s total; measured trial-to-trial
    # spread on a noisy 1-CPU VM is ~1%, against the 3% gate.
    from ..obs.metrics import set_enabled

    def _query_burst() -> float:
        return best_ns(lambda: fast.query(1, 0), repeat=3, inner=40)

    def _query_burst_off() -> float:
        previous_obs = set_enabled(False)
        try:
            return _query_burst()
        finally:
            set_enabled(previous_obs)

    obs_ratios = []
    obs_off_samples = []
    for pair in range(100):
        if pair % 2 == 0:
            on_burst = _query_burst()
            off_burst = _query_burst_off()
        else:
            off_burst = _query_burst_off()
            on_burst = _query_burst()
        obs_ratios.append(on_burst / off_burst)
        obs_off_samples.append(off_burst)
    obs_overhead = statistics.median(obs_ratios)
    obs_off_ns = min(obs_off_samples)

    # The columnar batch gate: count=64 draws through the batched
    # executor versus the same 64 draws as looped single queries.
    batch_count = 64
    for _ in range(5):
        fast.query_many(1, 0, batch_count)
    batch_ns = best_ns(
        lambda: fast.query_many(1, 0, batch_count), repeat=25, inner=3
    ) / batch_count

    # The kernel-layer gate: count=256 draws through the batched columnar
    # executor (dispatching through the active kernel backend) versus the
    # same 256 draws as looped single queries, measured in the same run so
    # host drift cancels out of the ratio.
    from ..fastpath import kernels

    kernel = kernels.kernel_name()
    kernel_count = 256
    for _ in range(3):
        fast.query_many(1, 0, kernel_count)
    kernel_batch_ns = best_ns(
        lambda: fast.query_many(1, 0, kernel_count), repeat=12, inner=2
    ) / kernel_count
    looped_ns = best_ns(
        lambda: [fast.query(1, 0) for _ in range(kernel_count)],
        repeat=6,
    ) / kernel_count

    n_naive = min(n, 1 << 14)
    naive = NaiveDPSS(items[:n_naive], source=RandomBitSource(8))
    naive_ns = best_ns(lambda: naive.query(1, 0), repeat=3)

    e1_results = [
        {"structure": "HALT", "n": n, "mu": round(mu, 3),
         "ns_per_op": round(fast_ns), "op": "query(1,0)", "fastpath": True},
        {"structure": "HALT", "n": n, "mu": round(mu, 3),
         "ns_per_op": round(batch_ns),
         "op": f"query_many(1,0,{batch_count})/draw", "fastpath": True},
        {"structure": "HALT", "n": n, "mu": round(mu, 3),
         "ns_per_op": round(exact_ns), "op": "query(1,0)", "fastpath": False},
        {"structure": "NaiveDPSS", "n": n_naive, "mu": None,
         "ns_per_op": round(naive_ns), "op": "query(1,0)", "fastpath": True},
        {"structure": "HALT", "n": n, "mu": round(mu, 3),
         "ns_per_op": round(obs_off_ns), "op": "query(1,0) obs-off",
         "fastpath": True},
        {"structure": "HALT", "n": n, "mu": round(mu, 3),
         "ns_per_op": round(looped_ns), "op": "query(1,0) looped",
         "fastpath": True, "kernel": kernel},
        {"structure": "HALT", "n": n, "mu": round(mu, 3),
         "ns_per_op": round(kernel_batch_ns),
         "op": f"query_many(1,0,{kernel_count})/draw",
         "fastpath": True, "kernel": kernel},
    ]

    counter = iter(range(1 << 62))

    def one_update():
        key = ("smoke", next(counter))
        fast.insert(key, 12345)
        fast.delete(key)

    update_ns = best_ns(one_update, repeat=200, inner=5) / 2
    e3_results = [
        {"structure": "HALT", "n": n, "mu": None,
         "ns_per_op": round(update_ns), "op": "insert+delete/2",
         "fastpath": True},
    ]

    summary = {
        "e1": e1_results,
        "e3": e3_results,
        "speedup_vs_exact": exact_ns / fast_ns if fast_ns else None,
        "query_many_speedup": fast_ns / batch_ns if batch_ns else None,
        "query_many_speedup_256": (
            looped_ns / kernel_batch_ns if kernel_batch_ns else None
        ),
        "kernel": kernel,
        "obs_overhead": obs_overhead,
    }
    base = baseline("E1", directory)
    if base:
        base_halt = [
            r
            for r in base["results"]
            if r["structure"] == "HALT" and r["n"] == n
        ]
        if base_halt:
            summary["speedup_vs_baseline"] = base_halt[0]["ns_per_op"] / fast_ns

    print_table(
        "bench smoke: E1 query (ns/op)",
        ["structure", "n", "op", "ns/op"],
        [[r["structure"] + ("" if r["fastpath"] else " (exact)"),
          r["n"], r["op"], r["ns_per_op"]] for r in e1_results],
    )
    print_table(
        "bench smoke: E3 update (ns/op)",
        ["structure", "n", "ns/op"],
        [[r["structure"], r["n"], r["ns_per_op"]] for r in e3_results],
    )
    if "speedup_vs_baseline" in summary:
        print(f"E1 fastpath speedup vs recorded baseline: "
              f"{summary['speedup_vs_baseline']:.2f}x")
    print(f"E1 fastpath speedup vs exact engine (same build): "
          f"{summary['speedup_vs_exact']:.2f}x")
    print(f"E1 query_many columnar batch vs looped single queries: "
          f"{summary['query_many_speedup']:.2f}x")
    print(f"E1 query_many count=256 vs looped singles "
          f"(kernel={kernel}): {summary['query_many_speedup_256']:.2f}x")
    print(f"E1 observability overhead (instrumented / obs-off query): "
          f"{summary['obs_overhead']:.3f}x")

    if record:
        append_run("E1", "bench --smoke", e1_results, directory)
        append_run("E3", "bench --smoke", e3_results, directory)
    return summary


def _measure_serve_fronts(
    items: list[tuple],
    num_shards: int,
    ops: int,
    clients: int,
    hot_keys: int = 256,
    hot_fraction: float = 0.6,
) -> tuple[float, float]:
    """ns/op of the two serve fronts over the same ``put`` stream, both on
    real localhost TCP so the transport cost is symmetric.

    The stream is hot-key skewed (``hot_fraction`` of the writes target
    ``hot_keys`` distinct keys, the rest are uniform) — the shape serving
    traffic has and the shape write pipelining is built for: the serial
    write-through loop pays one ``apply_many`` walk per accepted op, hot or
    not, while the pipelined front's drains net per-key churn out and run
    the bucket cascade once per touched bucket.

    Serial: the blocking ``serve_loop`` behind one TCP connection, the
    client pipelining its requests from a sender thread while the main
    thread consumes replies (the serial front's best case — no round-trip
    stalls).  Pipelined: the asyncio front with ``clients`` concurrent
    connections, each pipelining its share of the same stream, pending
    writes draining at the burst watermark or on loop idle.
    """
    import asyncio
    import random
    import socket
    import threading

    from ..service import SamplingService, ServiceConfig
    from ..service.async_serve import AsyncLineServer
    from ..service.serve_loop import serve_loop

    # One whole burst per drain: the watermark is the knob a deployment
    # sizes to its burst length, so the bench sizes it to the bench burst.
    def build() -> SamplingService:
        svc = SamplingService(
            ServiceConfig(
                num_shards=num_shards, backend="halt", seed=83, batch_ops=ops
            )
        )
        svc.submit([("insert", key, weight) for key, weight in items])
        svc.flush()
        return svc

    rng = random.Random(99)
    n = len(items)
    hot = [rng.randrange(n) for _ in range(hot_keys)]
    base = [
        (
            hot[rng.randrange(hot_keys)]
            if rng.random() < hot_fraction
            else rng.randrange(n),
            rng.randint(1, (1 << 24) - 1),
        )
        for _ in range(ops)
    ]
    mask = (1 << 24) - 1
    round_no = [0]

    def script_lines() -> list[str]:
        # Salted per round: every timing round must move real weight.
        round_no[0] += 1
        salt = round_no[0]
        return [f"put {key} {((w + salt) & mask) or 1}" for key, w in base]

    serial = build()

    def serial_round() -> None:
        payload = ("\n".join(script_lines()) + "\nquit\n").encode()
        listener = socket.create_server(("127.0.0.1", 0))
        _, port = listener.getsockname()[:2]

        def serve_one() -> None:
            conn, _ = listener.accept()
            with conn, conn.makefile("r") as rf, conn.makefile("w") as wf:
                serve_loop(serial, rf, wf)

        server = threading.Thread(target=serve_one)
        server.start()
        client = socket.create_connection(("127.0.0.1", port))
        sender = threading.Thread(target=client.sendall, args=(payload,))
        sender.start()
        replies = 0
        while replies < ops + 1:
            chunk = client.recv(1 << 16)
            if not chunk:
                break
            replies += chunk.count(b"\n")
        sender.join()
        client.close()
        server.join()
        listener.close()
        if replies != ops + 1:
            raise RuntimeError(
                f"serve bench (serial): {replies} replies for {ops} requests"
            )

    serial_ns = best_ns(serial_round, repeat=3) / ops

    pipelined = build()

    async def pipelined_round_async() -> None:
        server = await AsyncLineServer(
            pipelined, port=0, watermark=ops
        ).start()
        host, port = server.address
        lines = script_lines()  # one generation per round, like the serial side
        shares = [share for share in
                  (lines[i::clients] for i in range(clients)) if share]

        async def client(share: list[str]) -> None:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(("\n".join(share) + "\nquit\n").encode())
            await writer.drain()
            data = await reader.read(-1)  # server closes after quit
            writer.close()
            replies = data.count(b"\n")
            if replies != len(share) + 1:
                raise RuntimeError(
                    f"serve bench: {replies} replies for {len(share)} requests"
                )

        try:
            await asyncio.gather(*(client(share) for share in shares))
        finally:
            await server.aclose()

    def pipelined_round() -> None:
        asyncio.run(pipelined_round_async())

    pipelined_ns = best_ns(pipelined_round, repeat=3) / ops
    return serial_ns, pipelined_ns


def run_service_smoke(
    directory: str | None = None,
    n: int = 100_000,
    mixed_ops: int = 20_000,
    update_batch: int = 4_096,
    num_shards: int = 4,
    serve_clients: int = 8,
    record: bool = True,
) -> dict:
    """The E12 serving-layer smoke: batched service vs single-call loop.

    Three measurements over the same item population (n items, 24-bit
    weights) and the same op streams:

    - **update path** (gate: >= 3x): ``update_batch`` weight updates applied
      as one service ``submit`` + ``flush`` (mutation log -> per-shard
      ``apply_many``, one hierarchy walk per touched bucket) versus the same
      updates as single ``update_weight`` calls on an unsharded HALT.
    - **mixed 90/10 read/write serving mix** (recorded for trend): the same
      interleaved stream served by the service in windows (reads through
      ``query_many``, writes through the log) versus one-call-at-a-time
      against the unsharded HALT.
    - **serve fronts** (gate: >= 2x): the same ``put`` stream through the
      serial stdin/stdout serve loop (write-through) versus the asyncio
      front with ``serve_clients`` concurrent pipelined-writer connections
      (writes coalescing across connections into batched drains).
    """
    import random

    from ..core.halt import HALT
    from ..randvar.bitsource import RandomBitSource
    from ..service import SamplingService, ServiceConfig
    from .harness import print_table

    rng = random.Random(4321)
    items = [(i, rng.randint(1, (1 << 24) - 1)) for i in range(n)]

    single = HALT(items, source=RandomBitSource(71), fast=True)
    service = SamplingService(
        ServiceConfig(num_shards=num_shards, backend="halt", seed=71)
    )
    service.submit([("insert", key, weight) for key, weight in items])
    service.flush()

    # -- update path: batched apply_many vs single-call loop ----------------
    # Weights are perturbed per timing round: every round must move real
    # weight (the batched path nets out no-op updates, and measuring a
    # round of pure no-ops would overstate the batching win).
    updates = [
        ("update", rng.randrange(n), rng.randint(1, (1 << 24) - 1))
        for _ in range(update_batch)
    ]
    mask = (1 << 24) - 1

    def perturbed(round_counter: list[int]) -> list[tuple]:
        round_counter[0] += 1
        salt = round_counter[0]
        return [
            ("update", key, ((weight + salt) & mask) or 1)
            for _, key, weight in updates
        ]

    single_round = [0]
    batched_round = [0]

    def updates_single() -> None:
        for _, key, weight in perturbed(single_round):
            single.update_weight(key, weight)

    def updates_batched() -> None:
        service.submit(perturbed(batched_round))
        service.flush()

    single_update_ns = best_ns(updates_single, repeat=5) / update_batch
    batched_update_ns = best_ns(updates_batched, repeat=5) / update_batch
    update_speedup = single_update_ns / batched_update_ns

    # -- mixed 90/10 serving stream -----------------------------------------
    stream = []
    for _ in range(mixed_ops):
        if rng.random() < 0.9:
            stream.append(None)  # read: query(1, 0)
        else:
            stream.append(
                ("update", rng.randrange(n), rng.randint(1, (1 << 24) - 1))
            )

    mixed_single_round = [0]

    def mixed_single() -> None:
        mixed_single_round[0] += 1
        salt = mixed_single_round[0]
        for op in stream:
            if op is None:
                single.query(1, 0)
            else:
                single.update_weight(op[1], ((op[2] + salt) & mask) or 1)

    def timed_mixed(svc) -> float:
        """ns/op of the windowed mixed stream through one service front —
        the shared driver of the mixed row (inline service vs unsharded
        single-call loop) and the parallel_shards row (worker runtime vs
        inline runtime, same front, same stream)."""
        counter = [0]

        def one_round(window: int = 512) -> None:
            counter[0] += 1
            salt = counter[0]
            for start in range(0, len(stream), window):
                reads = 0
                writes = []
                for op in stream[start:start + window]:
                    if op is None:
                        reads += 1
                    else:
                        writes.append(
                            ("update", op[1], ((op[2] + salt) & mask) or 1)
                        )
                if writes:
                    svc.submit(writes)
                if reads:
                    svc.query_many([(1, 0)] * reads)
            svc.flush()

        return best_ns(one_round, repeat=3) / mixed_ops

    mixed_single_ns = best_ns(mixed_single, repeat=3) / mixed_ops
    mixed_service_ns = timed_mixed(service)

    # -- shard runtimes: worker processes vs inline, same mixed stream ------
    # The parallel_shards row answers the ROADMAP's sharding-tax question:
    # the same windowed 90/10 stream through the same sharded front, with
    # the only difference being where the shards live.  Worker shards run
    # each drain and each batched read fan-out on their own CPUs, so on a
    # multi-core machine the row's speedup tracks the core count; on a
    # single-core machine there is no parallelism to buy and the ratio
    # records the (small) framing overhead instead.  The inline side is
    # the mixed measurement just taken on the same front.
    worker_service = SamplingService(
        ServiceConfig(
            num_shards=num_shards, backend="halt", seed=71, workers=True
        )
    )
    try:
        worker_service.submit(
            [("insert", key, weight) for key, weight in items]
        )
        worker_service.flush()
        worker_mixed_ns = timed_mixed(worker_service)
    finally:
        worker_service.close()
    inline_mixed_ns = mixed_service_ns
    parallel_speedup = inline_mixed_ns / worker_mixed_ns
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1

    # -- serve fronts: serial loop vs pipelined concurrent writers ----------
    serial_serve_ns, pipelined_serve_ns = _measure_serve_fronts(
        items, num_shards, ops=update_batch, clients=serve_clients
    )
    serve_speedup = serial_serve_ns / pipelined_serve_ns

    def ops_per_sec(ns: float) -> int:
        return round(1e9 / ns) if ns else 0

    results = [
        {
            "workload": "updates", "n": n, "ops": update_batch,
            "shards": num_shards,
            "single_ops_per_sec": ops_per_sec(single_update_ns),
            "service_ops_per_sec": ops_per_sec(batched_update_ns),
            "speedup": round(update_speedup, 2),
        },
        {
            "workload": "mixed_90r_10w", "n": n, "ops": mixed_ops,
            "shards": num_shards,
            "single_ops_per_sec": ops_per_sec(mixed_single_ns),
            "service_ops_per_sec": ops_per_sec(mixed_service_ns),
            "speedup": round(mixed_single_ns / mixed_service_ns, 2)
            if mixed_service_ns else None,
        },
        {
            "workload": "parallel_shards", "n": n, "ops": mixed_ops,
            "shards": num_shards, "cores": cores,
            "single_ops_per_sec": ops_per_sec(inline_mixed_ns),
            "service_ops_per_sec": ops_per_sec(worker_mixed_ns),
            "speedup": round(parallel_speedup, 2),
        },
        {
            "workload": "serve_pipelined", "n": n, "ops": update_batch,
            "shards": num_shards, "clients": serve_clients,
            "single_ops_per_sec": ops_per_sec(serial_serve_ns),
            "service_ops_per_sec": ops_per_sec(pipelined_serve_ns),
            "speedup": round(serve_speedup, 2),
        },
    ]
    print_table(
        "bench smoke: E12 service throughput (ops/sec)",
        ["workload", "n", "single-call", "service (batched)", "speedup"],
        [
            [r["workload"], r["n"], r["single_ops_per_sec"],
             r["service_ops_per_sec"], f"{r['speedup']:.2f}x"]
            for r in results
        ],
    )
    summary = {
        "e12": results,
        "update_speedup": update_speedup,
        "mixed_speedup": results[1]["speedup"],
        "parallel_speedup": parallel_speedup,
        "parallel_cores": cores,
        "serve_speedup": serve_speedup,
    }
    if record:
        append_run("E12", "bench --smoke", results, directory)
    return summary


def run_failover_bench(
    directory: str | None = None,
    n: int = 20_000,
    ops: int = 2_000,
    num_shards: int = 2,
    record: bool = True,
) -> dict:
    """The E12 ``failover`` row: query latency through a mid-stream kill.

    A workers+standby service is preloaded with ``n`` items and then serves
    a mixed 80/20 query/put stream while a scripted
    :class:`~repro.service.faults.FaultPlan` SIGKILLs shard 0's head right
    after a query fan-out frame was sent — the worst spot: the reply is
    already owed.  The supervisor promotes the warm standby (O(tail): the
    applied-batch log is empty right after the preload flush) and retries
    the orphaned query, so the stream keeps flowing with zero errors.  The
    row records the client-observed per-query p50/p99 — the kill and the
    promotion ride inside those quantiles — plus the supervisor's failover
    counters; ``cmd_bench`` gates the quantiles against the absolute E14
    latency budgets (25 ms p50 / 250 ms p99).
    """
    import random
    from time import perf_counter_ns

    from ..service import SamplingService, ServiceConfig
    from ..service.faults import Fault, FaultPlan
    from .harness import print_table

    rng = random.Random(9173)
    plan = FaultPlan(
        [Fault("query_sent", shard=0, nth=max(1, ops // 4), member="head")]
    )
    service = SamplingService(
        ServiceConfig(
            num_shards=num_shards, backend="halt", seed=71,
            workers=True, standby=True,
        ),
        fault_plan=plan,
    )
    latencies: list[int] = []
    errors = 0
    try:
        service.submit(
            [("insert", i, rng.randint(1, (1 << 24) - 1)) for i in range(n)]
        )
        service.flush()
        key = n
        for _ in range(ops):
            if rng.random() < 0.2:
                service.submit_one(
                    ("insert", key, rng.randint(1, (1 << 24) - 1))
                )
                key += 1
            else:
                start = perf_counter_ns()
                try:
                    service.query(1, 0)
                except Exception:
                    errors += 1
                latencies.append(perf_counter_ns() - start)
        service.flush()
        failovers = dict(service.backend.failovers or {})
    finally:
        service.close()

    ranked = sorted(latencies)

    def pct(q: float) -> int:
        return ranked[min(len(ranked) - 1, int(q * (len(ranked) - 1)))]

    row = {
        "workload": "failover", "n": n, "ops": ops, "shards": num_shards,
        "queries": len(ranked), "errors": errors,
        "kill": "SIGKILL head shard=0 at query_sent",
        "fired": plan.exhausted,
        "p50_ns": pct(0.50), "p99_ns": pct(0.99),
        "respawns": failovers.get("respawns", 0),
        "promotions": failovers.get("promotions", 0),
        "retries": failovers.get("retries", 0),
    }
    print_table(
        "bench smoke: E12 failover (standby promotion under a head kill)",
        ["workload", "queries", "errors", "p50 (us)", "p99 (us)",
         "promotions", "retries"],
        [[row["workload"], row["queries"], row["errors"],
          row["p50_ns"] // 1000, row["p99_ns"] // 1000,
          row["promotions"], row["retries"]]],
    )
    if record:
        append_run("E12", "bench --smoke", [row], directory)
    return {
        "failover": row,
        "failover_p50_ns": row["p50_ns"],
        "failover_p99_ns": row["p99_ns"],
        "failover_errors": errors,
        "failover_fired": plan.exhausted,
        "failover_promotions": row["promotions"],
    }


def run_codec_microbench(
    directory: str | None = None,
    batch_ops: int = 10_000,
    record: bool = True,
) -> dict:
    """The shard-RPC frame-codec microbench: binary framing vs pickle.

    Measures the cost of moving one ``apply`` batch of ``batch_ops`` ops
    across the framing boundary — the work the RPC layer does per frame
    once the front has a columnar batch in hand:

    - **binary framing** (gated: >= 3x vs pickle): encode a prepared
      :class:`~repro.service.frames.OpColumns` batch to wire bytes and
      decode it back columnar — exactly what ``WorkerBackend`` ships and
      what the worker receives.  The columns move as raw ``array('q')``
      buffers via ``memoryview``, so this is a handful of length-checked
      buffer joins/slices instead of a per-op object walk.
    - **pickle round trip**: ``pickle.dumps``/``loads`` of the same batch
      as the tuple message the old wire carried — the cost being replaced.
    - **end to end** (recorded, not gated): tuple extraction + framing +
      columnar decode + tuple materialization.  This brackets the codec
      from the tuple side; the shipped path does the extraction once per
      drained batch on the front and materializes once inside the worker's
      ``apply_many``, so the framing row is the per-frame hot cost.

    Rows record both round-trip times, the frame sizes, and the speedups;
    an ``apply_str`` row repeats the measurement with string keys
    (recorded for trend, not gated).
    """
    import pickle
    import random

    from ..service import frames
    from .harness import print_table

    rng = random.Random(2718)
    batches = {
        "apply_int": [
            ("update", rng.randrange(1 << 40), rng.randint(1, (1 << 24) - 1))
            for _ in range(batch_ops)
        ],
        "apply_str": [
            ("update", "user:%d" % rng.randrange(1 << 32),
             rng.randint(1, (1 << 24) - 1))
            for _ in range(batch_ops)
        ],
    }

    results = []
    for workload, ops in batches.items():
        message = ("apply", ops)
        cols = frames.OpColumns.from_ops(ops)
        wire = frames.encode_payload(("apply", cols))
        blob = pickle.dumps(message, pickle.HIGHEST_PROTOCOL)
        assert frames.decode_payload(wire) == message
        assert pickle.loads(blob) == message

        binary_ns = best_ns(
            lambda: frames.decode_payload(
                frames.encode_payload(("apply", cols)), columnar=True
            ),
            repeat=30, inner=3,
        )
        pickle_ns = best_ns(
            lambda: pickle.loads(
                pickle.dumps(message, pickle.HIGHEST_PROTOCOL)
            ),
            repeat=30, inner=3,
        )
        end_to_end_ns = best_ns(
            lambda: frames.decode_payload(
                frames.encode_payload(
                    ("apply", frames.OpColumns.from_ops(ops))
                ),
                columnar=True,
            )[1].to_ops(),
            repeat=10, inner=3,
        )
        results.append({
            "workload": workload, "ops": batch_ops,
            "binary_rt_ns": round(binary_ns),
            "pickle_rt_ns": round(pickle_ns),
            "end_to_end_rt_ns": round(end_to_end_ns),
            "binary_bytes": len(wire),
            "pickle_bytes": len(blob),
            "speedup": round(pickle_ns / binary_ns, 2),
            "end_to_end_speedup": round(pickle_ns / end_to_end_ns, 2),
            "gated": workload == "apply_int",
        })

    # Worker query-reply encode (recorded, not gated): the columnar
    # DrawColumns producer path (flatten once at the shard, then emit)
    # vs the eager re-flattening encoder vs pickle, over a reply shaped
    # like a busy shard's — frames must be byte-identical by construction.
    qdraws = [
        [rng.randrange(1 << 40) for _ in range(rng.randrange(8))]
        for _ in range(2048)
    ]
    qmessage = ("ok", (qdraws, 123456))
    qwire = frames.encode_payload(qmessage)
    assert frames.encode_payload(
        ("ok", (frames.DrawColumns.from_draws(qdraws), 123456))
    ) == qwire
    assert frames.decode_payload(qwire) == qmessage
    qblob = pickle.dumps(qmessage, pickle.HIGHEST_PROTOCOL)
    q_binary_ns = best_ns(
        lambda: frames.decode_payload(frames.encode_payload(
            ("ok", (frames.DrawColumns.from_draws(qdraws), 123456))
        )),
        repeat=30, inner=3,
    )
    q_eager_ns = best_ns(
        lambda: frames.decode_payload(frames.encode_payload(qmessage)),
        repeat=30, inner=3,
    )
    q_pickle_ns = best_ns(
        lambda: pickle.loads(
            pickle.dumps(qmessage, pickle.HIGHEST_PROTOCOL)
        ),
        repeat=30, inner=3,
    )
    results.append({
        "workload": "query_ok_int", "ops": len(qdraws),
        "binary_rt_ns": round(q_binary_ns),
        "pickle_rt_ns": round(q_pickle_ns),
        "end_to_end_rt_ns": round(q_eager_ns),
        "binary_bytes": len(qwire),
        "pickle_bytes": len(qblob),
        "speedup": round(q_pickle_ns / q_binary_ns, 2),
        "end_to_end_speedup": round(q_pickle_ns / q_eager_ns, 2),
        "gated": False,
    })

    print_table(
        "bench smoke: shard-RPC frame codec (round-trip ns, "
        f"{batch_ops}-op apply batch)",
        ["workload", "binary (us)", "pickle (us)", "end-to-end (us)",
         "bin bytes", "pkl bytes", "speedup"],
        [[r["workload"], r["binary_rt_ns"] // 1000,
          r["pickle_rt_ns"] // 1000, r["end_to_end_rt_ns"] // 1000,
          r["binary_bytes"], r["pickle_bytes"], f"{r['speedup']:.2f}x"]
         for r in results],
    )
    if record:
        append_run("CODEC", "bench --smoke", results, directory)
    gated = results[0]
    return {
        "codec": results,
        "codec_speedup": gated["speedup"],
        "codec_binary_ns": gated["binary_rt_ns"],
        "codec_pickle_ns": gated["pickle_rt_ns"],
    }


def run_slow_shard_bench(
    directory: str | None = None,
    n: int = 5_000,
    puts: int = 300,
    num_shards: int = 3,
    delay_s: float = 0.02,
    record: bool = True,
) -> dict:
    """The E12 ``slow_shard`` rows: front responsiveness with one shard
    artificially delayed.

    Three measured cells, each a fresh workers-runtime service behind the
    asyncio front.  One connection hammers ``query`` — every query's
    fan-out waits on the delayed shard — while a second connection times
    ``puts`` put acks.  Put acks never RPC (validation against pending
    log + draining overlay + applied mirror; the watermark is set so no
    drain fires mid-measurement), so their latency measures only whether
    the event loop stays responsive while a shard reply is owed:

    - ``baseline``: no delay, event-loop dispatch.
    - ``sync_dispatch``: shard 0 sleeps ``delay_s`` before every query
      (the worker's ``delay`` debug verb) and the server runs the
      historical blocking dispatch — each hammered query holds the whole
      loop for ``delay_s``, so every put ack queues behind it and put p99
      blows up to the delay.  Recorded first as the pre-PR baseline.
    - ``async_dispatch``: same delayed shard, event-loop dispatch — the
      fan-out parks only its own coroutine and put acks stay flat.

    ``cmd_bench`` gates the async cell: put p99 within 2x of the no-delay
    baseline (with a small absolute floor absorbing scheduler noise),
    while the sync cell documents the stall being engineered away.
    """
    import asyncio
    import contextlib
    import random
    from time import perf_counter_ns

    from ..service import SamplingService, ServiceConfig
    from ..service.async_serve import AsyncLineServer
    from .harness import print_table

    def build() -> SamplingService:
        rng = random.Random(515)
        service = SamplingService(
            ServiceConfig(
                num_shards=num_shards, backend="halt", seed=71, workers=True
            )
        )
        service.submit(
            [("insert", i, rng.randint(1, (1 << 24) - 1)) for i in range(n)]
        )
        service.flush()
        return service

    async def cell(async_dispatch: bool, delay: float) -> list[int]:
        service = build()
        # Watermark far above the put count: the measured puts buffer in
        # the pending log and never trigger a drain, so each ack is pure
        # front-side work racing the hammered query fan-outs for the loop.
        server = await AsyncLineServer(
            service, port=0, watermark=1 << 30,
            async_dispatch=async_dispatch,
        ).start()
        host, port = server.address
        if delay:
            service.backend.set_delay(0, delay)
        stop = asyncio.Event()

        async def hammer() -> None:
            reader, writer = await asyncio.open_connection(host, port)
            try:
                while not stop.is_set():
                    writer.write(b"query 1 0\n")
                    await writer.drain()
                    if not await reader.readline():
                        return
                # Quit so the server closes this connection itself — no
                # connection task left for aclose() to cancel.
                writer.write(b"quit\n")
                await writer.drain()
                await reader.read(-1)
            finally:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

        latencies: list[int] = []
        try:
            hammer_task = asyncio.ensure_future(hammer())
            # Let the hammer reach steady state before timing starts.
            await asyncio.sleep(4 * delay if delay else 0.05)
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for index in range(puts):
                    line = b"put slow:%d 5\n" % index
                    start = perf_counter_ns()
                    writer.write(line)
                    await writer.drain()
                    reply = await reader.readline()
                    latencies.append(perf_counter_ns() - start)
                    if not reply.startswith(b"OK"):
                        raise RuntimeError(f"slow_shard put ack: {reply!r}")
                writer.write(b"quit\n")
                await writer.drain()
                await reader.read(-1)
            finally:
                # Stop the hammer and *await* it (no cancel): its last
                # query must finish its fan-out before aclose() runs the
                # final synchronous drain on the same member sockets.
                stop.set()
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
            await hammer_task
        finally:
            await server.aclose()
            service.close()
        return latencies

    cells = {}
    for label, async_dispatch, delay in (
        ("baseline", True, 0.0),
        ("sync_dispatch", False, delay_s),
        ("async_dispatch", True, delay_s),
    ):
        ranked = sorted(asyncio.run(cell(async_dispatch, delay)))

        def pct(q: float) -> int:
            return ranked[min(len(ranked) - 1, int(q * (len(ranked) - 1)))]

        cells[label] = {"p50_ns": pct(0.50), "p99_ns": pct(0.99)}

    base_p99 = cells["baseline"]["p99_ns"]
    results = [
        {
            "workload": "slow_shard", "cell": label, "n": n, "puts": puts,
            "shards": num_shards,
            "delay_ms": round(delay_s * 1e3, 3) if label != "baseline" else 0,
            "p50_ns": cells[label]["p50_ns"],
            "p99_ns": cells[label]["p99_ns"],
            "p99_vs_baseline": round(cells[label]["p99_ns"] / base_p99, 2)
            if base_p99 else None,
        }
        for label in ("baseline", "sync_dispatch", "async_dispatch")
    ]
    print_table(
        "bench smoke: E12 slow shard (put-ack latency, one shard delayed "
        f"{delay_s * 1e3:.0f} ms/query)",
        ["cell", "p50 (us)", "p99 (us)", "p99 vs baseline"],
        [[r["cell"], r["p50_ns"] // 1000, r["p99_ns"] // 1000,
          f"{r['p99_vs_baseline']:.2f}x"] for r in results],
    )
    if record:
        append_run("E12", "bench --smoke", results, directory)
    return {
        "slow_shard": results,
        "slow_shard_base_p99_ns": base_p99,
        "slow_shard_sync_p99_ns": cells["sync_dispatch"]["p99_ns"],
        "slow_shard_async_p99_ns": cells["async_dispatch"]["p99_ns"],
    }
