"""Statistical verification helpers for the experiment suite.

Exact distributions are known for every sampler in this repository, so the
tests use goodness-of-fit machinery with *pre-registered* generous
thresholds at fixed seeds (no flaky randomness): chi-square for discrete
laws, Wilson intervals for Bernoulli marginals, total variation for
small exact laws.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..wordram.rational import Rat


def wilson_interval(successes: int, trials: int, z: float = 4.0) -> tuple[float, float]:
    """Wilson score interval; z = 4 gives ~1 - 6e-5 two-sided coverage."""
    if trials <= 0:
        return 0.0, 1.0
    phat = successes / trials
    z2 = z * z
    denom = 1 + z2 / trials
    center = (phat + z2 / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        phat * (1 - phat) / trials + z2 / (4 * trials * trials)
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def chi_square_statistic(
    counts: Mapping[int, int] | Sequence[int],
    expected: Sequence[float],
    support: Sequence[int] | None = None,
) -> tuple[float, int]:
    """(chi^2 statistic, degrees of freedom) with small-bin pooling.

    ``expected`` are probabilities over ``support`` (defaults to
    ``1..len(expected)``); bins with expected count < 5 are pooled.
    """
    if support is None:
        support = range(1, len(expected) + 1)
    if isinstance(counts, Mapping):
        observed = [counts.get(s, 0) for s in support]
    else:
        observed = list(counts)
    total = sum(observed)
    if total == 0:
        raise ValueError("no observations")
    pairs = [(obs, p * total) for obs, p in zip(observed, expected)]
    pooled: list[tuple[float, float]] = []
    acc_obs = acc_exp = 0.0
    for obs, exp in pairs:
        acc_obs += obs
        acc_exp += exp
        if acc_exp >= 5:
            pooled.append((acc_obs, acc_exp))
            acc_obs = acc_exp = 0.0
    if acc_exp > 0:
        if pooled:
            last_obs, last_exp = pooled[-1]
            pooled[-1] = (last_obs + acc_obs, last_exp + acc_exp)
        else:
            pooled.append((acc_obs, acc_exp))
    stat = sum((obs - exp) ** 2 / exp for obs, exp in pooled if exp > 0)
    dof = max(1, len(pooled) - 1)
    return stat, dof


def chi_square_pvalue(stat: float, dof: int) -> float:
    """Upper-tail chi-square p-value (survival function)."""
    try:
        from scipy.stats import chi2

        return float(chi2.sf(stat, dof))
    except ImportError:  # pragma: no cover - scipy is in the test env
        # Wilson-Hilferty approximation.
        x = (stat / dof) ** (1.0 / 3.0)
        mu = 1 - 2.0 / (9 * dof)
        sigma = math.sqrt(2.0 / (9 * dof))
        zscore = (x - mu) / sigma
        return 0.5 * math.erfc(zscore / math.sqrt(2))


def chi_square_gof(
    counts: Mapping[int, int] | Sequence[int],
    expected: Sequence[float],
    support: Sequence[int] | None = None,
) -> float:
    """p-value for H0: samples were drawn from ``expected``."""
    stat, dof = chi_square_statistic(counts, expected, support)
    return chi_square_pvalue(stat, dof)


def total_variation(law_a: Mapping[int, Rat], law_b: Mapping[int, Rat]) -> Rat:
    """Exact TV distance between two finite laws over int outcomes."""
    keys = set(law_a) | set(law_b)
    diff = Rat.zero()
    for key in keys:
        a = law_a.get(key, Rat.zero())
        b = law_b.get(key, Rat.zero())
        diff = diff + (a - b if a >= b else b - a)
    return diff / 2


def empirical_pmf(samples: Sequence[int]) -> dict[int, float]:
    counts: dict[int, int] = {}
    for s in samples:
        counts[s] = counts.get(s, 0) + 1
    n = len(samples)
    return {k: v / n for k, v in counts.items()}
