"""Float-gated exact Bernoulli primitives.

Every generator here samples ``[U < p]`` for a uniform real ``U`` whose bits
are revealed lazily, exactly like the Fact 1 / Fact 2 generators in
:mod:`repro.randvar` — the *law* is exactly ``Ber(p)``.  The difference is
purely operational: the first ``GATE_BITS`` bits of ``U`` are drawn as one
word ``u`` and compared against a floating-point estimate ``t ~ p * 2^G``
whose error is bounded by a certified slack.  Outside the slack band the
comparison is decided by two float operations; inside it (probability
``~2^-40`` at the default gate width) the draw falls back to exact integer
long division or the lazy i-bit-approximation framework, continuing with
the *same* ``u`` so the conditional law is preserved.

Slack accounting
----------------

``v = floor(p * 2^G)`` splits the gate grid: ``u <= v - 1`` implies
``U < p`` and ``u >= v + 1`` implies ``U > p`` (``u == v`` needs more bits).
The float estimate ``t`` satisfies ``|t - p * 2^G| <= t * rel + 2`` where
``rel`` covers the correctly-rounded division (a few ulp) or the
``exp``/``log1p`` round-trip (bounded well below ``1e-12`` for the argument
ranges the samplers produce; we budget ``1e-11``).  The gate therefore
decides only when ``u`` is more than ``t * rel + 8`` away from ``t``,
which implies the exact comparison would decide identically.
"""

from __future__ import annotations

import math

from ..randvar.approx import p_star_approx_fn, pow_approx_fn
from ..randvar.bitsource import BitSource
from ..randvar.lazy import MAX_PRECISION

#: Width of the gate word (bits of U drawn up front).  32 packs two gate
#: words per buffered 64-bit word while keeping the undecided band (~2^-28
#: per draw) cheap enough to never matter; any width in [1, 53] gives the
#: exact same output law (the fallback resolves the band exactly).  Tests
#: shrink it (via :func:`set_gate_bits`) so EnumerationBitSource can
#: exhaust the bit tree.
GATE_BITS = 32

_SCALE = float(1 << GATE_BITS)

#: Relative slack budget for exp/log-based estimates (true error < 1e-14).
#: The full band at such a site is ``t * (_REL - a * 1e-15) + 8.0`` for
#: the (non-positive) log-domain argument ``a``.  This accounting is the
#: reference; the geometric plans (``geom.py``) and the inlined batch
#: executors (``columnar.py``) replicate the formula's literals in their
#: hot loops — any retuning must update those sites in lockstep (grep for
#: ``1e-11 - a * 1e-15``).
_REL = 1e-11

#: Relative slack for correctly-rounded division estimates (a few ulp);
#: the band is ``t * REL_DIV + 8.0``.  Sites whose estimate takes *more*
#: than one rounding step must budget more (``NaiveDPSS`` uses 1e-12 for
#: its scaled two-step product).
REL_DIV = 4e-16


def set_gate_bits(bits: int) -> int:
    """Set the gate width (returns the previous one).  Test hook.

    Must not be changed between drawing and finishing a variate; structures
    cache nothing across the boundary, so calling it between queries is safe.
    """
    global GATE_BITS, _SCALE
    if not 1 <= bits <= 53:
        raise ValueError(f"gate width must be in [1, 53], got {bits}")
    previous = GATE_BITS
    GATE_BITS = bits
    _SCALE = float(1 << bits)
    return previous


def _long_division_tail(rem: int, den: int, source: BitSource) -> int:
    """Finish ``[U < p]`` when the first gate word of U ties with
    ``floor(p * 2^G)``: compare further bits of U against the continued
    binary expansion of p, whose state is the long-division remainder."""
    if rem == 0:
        return 0  # p's expansion terminated: U >= p.
    while True:
        rem <<= 1
        if rem >= den:
            p_bit = 1
            rem -= den
        else:
            p_bit = 0
        u_bit = source.bit()
        if u_bit < p_bit:
            return 1
        if u_bit > p_bit:
            return 0
        if rem == 0:
            return 0


def bernoulli_given_u(u: int, num: int, den: int, source: BitSource) -> int:
    """Exact ``[U < num/den]`` given the first ``GATE_BITS`` bits ``u`` of U.

    The integer-exact half of the gate; callers use it directly when they
    drew ``u`` themselves and their float bound could not decide.
    """
    shifted = num << GATE_BITS
    v = shifted // den
    if u + 1 <= v:
        return 1
    if u >= v + 1:
        return 0
    return _long_division_tail(shifted - v * den, den, source)


def gated_bernoulli(
    num: int, den: int, source: BitSource, q: float | None = None
) -> int:
    """Exact ``Ber(min(num/den, 1))`` for positive-``den`` integers.

    Same clamping contract as :func:`repro.randvar.bernoulli.
    bernoulli_rational`; ``num``/``den`` need not be reduced.  ``q`` may
    pass a precomputed ``num/den`` float to skip the division.
    """
    if num <= 0:
        return 0
    if num >= den:
        return 1
    u = source.bits(GATE_BITS)
    if q is None:
        q = num / den  # CPython int division is correctly rounded
    t = q * _SCALE
    slack = t * REL_DIV + 8.0
    if u < t - slack:
        return 1
    if u > t + slack:
        return 0
    return bernoulli_given_u(u, num, den, source)


def _resolve_lazy(u: int, i: int, approx, source: BitSource) -> int:
    """Continue the Fact 2 lazy comparison from precision ``i`` with the
    first ``i`` bits of U equal to ``u`` (mirrors ``bernoulli_from_approx``,
    which always starts from scratch)."""
    while True:
        v = approx(i)
        if u + 2 <= v:
            return 1
        if u >= v + 1:
            return 0
        if i >= MAX_PRECISION:
            raise RuntimeError(
                "lazy Bernoulli failed to resolve; approximator is likely "
                "violating its error bound"
            )
        u = (u << i) | source.bits(i)
        i <<= 1


def gated_bernoulli_pow(
    num: int,
    den: int,
    exponent: int,
    source: BitSource,
    log_base: float | None = None,
) -> int:
    """Exact ``Ber((num/den)^exponent)`` for a base in [0, 1].

    The float estimate is ``exp(exponent * log(num/den))`` — error a few
    ulp regardless of the exponent, unlike float repeated squaring.
    ``log_base`` may pass a cached ``log(num/den)``.
    """
    if exponent == 0 or num >= den:
        return 1
    if num <= 0:
        return 0
    u = source.bits(GATE_BITS)
    if log_base is None:
        log_base = math.log1p((num - den) / den)
    a = exponent * log_base
    t = math.exp(a) * _SCALE
    slack = t * (_REL - a * 1e-15) + 8.0  # a <= 0
    if u < t - slack:
        return 1
    if u > t + slack:
        return 0
    return _resolve_lazy(u, GATE_BITS, pow_approx_fn(num, den, exponent), source)


def gated_bernoulli_p_star(
    q_num: int, q_den: int, n: int, source: BitSource
) -> int:
    """Exact type (ii) ``Ber(p*)``, ``p* = (1-(1-q)^n)/(nq)`` with ``nq <= 1``.

    Mirrors :func:`repro.randvar.bernoulli.bernoulli_p_star` but gates with
    ``-expm1(n*log1p(-q)) / (n*q)`` before falling back to the Lemma 3.3
    series approximator.
    """
    u = source.bits(GATE_BITS)
    q = q_num / q_den
    a = n * math.log1p(-q)
    t = (-math.expm1(a)) / (n * q) * _SCALE
    slack = t * (_REL - a * 1e-15) + 8.0
    if u < t - slack:
        return 1
    if u > t + slack:
        return 0
    return _resolve_lazy(u, GATE_BITS, p_star_approx_fn(q_num, q_den, n), source)


def gated_bernoulli_dyadic(num: int, bits: int, source: BitSource) -> int:
    """Exact ``Ber(num / 2^bits)`` in one draw: no band, no fallback.

    The rejection ratio ``p_x / p'`` of the Algorithm 5 skip chains is the
    dyadic ``w / 2^(i+1)`` whenever the dominating probability did not
    clamp, so the hot accept test needs nothing beyond this comparison.
    """
    if num <= 0:
        return 0
    if num >= (1 << bits):
        return 1
    return 1 if source.bits(bits) < num else 0
