"""Float-gated fast-path sampling engine.

The exact samplers in :mod:`repro.core` and :mod:`repro.randvar` pay for
their exactness in constant factors: every Bernoulli walks the binary
expansion of an exact rational bit by bit, and every skip-chain power goes
through the fixed-point lazy approximator.  This package removes those
constants without giving up exactness:

- :mod:`repro.fastpath.gate` — float-gated exact Bernoulli primitives.  A
  53-bit word of the uniform ``U`` is drawn at once and compared against a
  *certified* floating-point interval around the target probability; only
  when ``U`` lands inside the (width ~2^-40) uncertainty band does the draw
  fall back to the exact integer / lazy-approximator path, continuing the
  comparison of the *same* ``U``.  The output law is therefore identical to
  the exact generators for every probability.
- :mod:`repro.fastpath.geom` — :class:`GeomPlan`: per-probability cached
  constants (block size, ``log(1-p)``, float bounds) driving gated
  B-Geo / T-Geo skip draws.
- :mod:`repro.fastpath.engine` — mirrors of the Algorithm 1-5 query
  drivers, reading group cuts, geometric plans, and structural snapshots
  from the shared :class:`~repro.core.plan.QueryPlan` (the one
  per-``(structure, total)`` plan cache both engines consult).
- :mod:`repro.fastpath.columnar` — the batched executors behind
  ``query_many``: one site-major pass over the flat columnar bucket
  arrays per batch, same per-draw law as the single-draw engine.

Toggling: every structure (:class:`~repro.core.halt.HALT` and the
baselines) takes ``fast=True/False`` at construction; ``fast=False``
restores the pre-fastpath exact code paths bit for bit.
"""

from .columnar import batched_bucket_walk, batched_query_pss
from .engine import fast_query_pss
from .gate import (
    GATE_BITS,
    gated_bernoulli,
    gated_bernoulli_p_star,
    gated_bernoulli_pow,
    set_gate_bits,
)
from .geom import (
    GeomPlan,
    fast_bounded_geometric,
    fast_skip_or_miss,
    fast_truncated_geometric,
)

__all__ = [
    "GATE_BITS",
    "GeomPlan",
    "batched_bucket_walk",
    "batched_query_pss",
    "fast_bounded_geometric",
    "fast_query_pss",
    "fast_skip_or_miss",
    "fast_truncated_geometric",
    "gated_bernoulli",
    "gated_bernoulli_p_star",
    "gated_bernoulli_pow",
    "set_gate_bits",
]
