"""Gated geometric skip draws with per-probability cached plans.

The Algorithm 5 skip chains draw ``B-Geo(p, n+1)`` repeatedly with the same
``p`` (a bucket's dominating probability) and varying ``n``.  The exact
generator re-derives the block size ``m = 2^k`` and re-enters the lazy
power approximator on every draw; a :class:`GeomPlan` hoists everything
that depends only on ``p`` — clamp flags, the block split, ``log(1-p)``,
the float of ``(1-p)^m`` — and the draw loops inline the float gate so one
draw is a few float operations plus word-batched gate words.  Output laws
are exactly those of :func:`repro.randvar.geometric.bounded_geometric` and
:func:`repro.randvar.geometric.truncated_geometric`.
"""

from __future__ import annotations

import math

from ..randvar.approx import pow_approx_fn
from ..randvar.bitsource import BitSource
from ..wordram.bits import floor_log2_rational
from . import gate
from .gate import _resolve_lazy, gated_bernoulli

__all__ = ["GeomPlan", "fast_bounded_geometric", "fast_truncated_geometric"]


class GeomPlan:
    """Cached constants for gated geometric draws with success prob ``p``.

    ``num``/``den`` need not be reduced; ``p`` is clamped to ``min(p, 1)``
    exactly as the exact generators clamp.
    """

    __slots__ = (
        "num",
        "den",
        "one",
        "seq",
        "q",
        "s_num",
        "s_den",
        "k",
        "m",
        "ls",
        "pow_m",
        "rel_m",
        "miss_cache",
        "kernel_cache",
    )

    def __init__(self, num: int, den: int) -> None:
        if num <= 0 or den <= 0:
            raise ValueError(f"GeomPlan needs positive num/den, got {num}/{den}")
        self.num = num
        self.den = den
        self.one = num >= den
        self.miss_cache: dict[int, tuple[float, float]] = {}
        # Kernel-layer bound caches (see fastpath.kernels.pow_bounds),
        # keyed by (gate width, n_i) — shared by all kernel backends.
        self.kernel_cache: dict = {}
        if self.one:
            self.seq = False
            return
        self.q = num / den
        self.s_num = den - num
        self.s_den = den
        self.ls = math.log1p(-self.q)  # log(1-p), used by every power gate
        self.seq = 4 * num >= den
        if self.seq:
            return
        # Block decomposition: m = 2^k with 1/2 < p*m <= 1 (Fact 3).
        self.k = floor_log2_rational(den, num)
        self.m = 1 << self.k
        # Float of (1-p)^m and its slack factor (see gate.py's accounting):
        # exp keeps the relative error near machine epsilon regardless of m.
        a = self.m * self.ls
        self.pow_m = math.exp(a)
        self.rel_m = 1e-11 - a * 1e-15  # a <= 0


def fast_bounded_geometric(plan: GeomPlan, n: int, source: BitSource) -> int:
    """Exact ``B-Geo(p, n) = min(Geo(p), n)`` using the plan's constants."""
    if plan.one:
        return 1
    if plan.seq:
        # p >= 1/4: expected <= 4 gated flips.
        num, den, q = plan.num, plan.den, plan.q
        for i in range(1, n):
            if gated_bernoulli(num, den, source, q):
                return i
        return n
    m = plan.m
    scale = gate._SCALE
    g = gate.GATE_BITS
    # Fully-failed blocks: flip Ber((1-p)^m) with the cached float gate.
    blocks = 0
    while True:
        if blocks * m >= n:
            return n  # even the smallest completion would exceed the bound
        u = source.bits(g)
        t = plan.pow_m * scale
        slack = t * plan.rel_m + 8.0
        if u > t + slack:
            break  # U >= (1-p)^m: this block contains the first success
        if u >= t - slack and (
            _resolve_lazy(
                u, g, pow_approx_fn(plan.s_num, plan.s_den, m), source
            )
            == 0
        ):
            break
        blocks += 1
    # Offset within the block: pmf ~ (1-p)^r on {0..m-1} via rejection.
    ls = plan.ls
    while True:
        r = source.bits(plan.k)
        if r == 0:
            break
        u = source.bits(g)
        a = r * ls
        t = math.exp(a) * scale
        slack = t * (1e-11 - a * 1e-15) + 8.0
        if u < t - slack:
            break  # U < (1-p)^r: offset accepted
        if u <= t + slack and (
            _resolve_lazy(
                u, g, pow_approx_fn(plan.s_num, plan.s_den, r), source
            )
            == 1
        ):
            break
    return min(blocks * m + r + 1, n)


def fast_skip_or_miss(plan: GeomPlan, n: int, source: BitSource) -> int:
    """``k = B-Geo(p, n+1)`` folded to ``0 if k > n else k`` — same joint law.

    ``k > n`` iff the first ``n`` trials all fail (probability ``(1-p)^n``),
    and conditioned on ``k <= n`` the value is ``T-Geo(p, n)``.  Gating the
    miss event directly makes the overwhelmingly common "no dominated
    success" outcome of Algorithm 2 cost one gate word instead of a full
    block-decomposition draw.
    """
    if plan.one:
        return 1
    cached = plan.miss_cache.get(n)
    if cached is None:
        a = n * plan.ls
        cached = (math.exp(a), 1e-11 - a * 1e-15)
        plan.miss_cache[n] = cached
    x, rel = cached
    g = gate.GATE_BITS
    u = source.bits(g)
    t = x * gate._SCALE
    slack = t * rel + 8.0
    if u < t - slack:
        return 0
    if u <= t + slack and (
        _resolve_lazy(u, g, pow_approx_fn(plan.s_num, plan.s_den, n), source)
        == 1
    ):
        return 0
    return fast_truncated_geometric(plan, n, source)


def fast_truncated_geometric(plan: GeomPlan, n: int, source: BitSource) -> int:
    """Exact ``T-Geo(p, n)`` (Theorem 1.3 cases) using the plan's constants."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if plan.one or n == 1:
        return 1
    num, den = plan.num, plan.den
    if n == 2:
        # T-Geo(p, 2) = 1 + Ber((1-p)/(2-p)).
        return 1 + gated_bernoulli(den - num, 2 * den - num, source)
    if n * num >= den:
        # Case 2.1: rejection from B-Geo(p, n+1).
        while True:
            i = fast_bounded_geometric(plan, n + 1, source)
            if i <= n:
                return i
    # Case 2.2 (corrected): uniform index, accept with Ber((1-p)^(i-1)).
    s_num, s_den, ls = plan.s_num, plan.s_den, plan.ls
    scale = gate._SCALE
    g = gate.GATE_BITS
    while True:
        i = 1 + source.random_below(n)
        if i == 1:
            return i
        u = source.bits(g)
        a = (i - 1) * ls
        t = math.exp(a) * scale
        slack = t * (1e-11 - a * 1e-15) + 8.0
        if u < t - slack:
            return i
        if u <= t + slack and (
            _resolve_lazy(u, g, pow_approx_fn(s_num, s_den, i - 1), source)
            == 1
        ):
            return i
