"""Fast-path mirrors of the PSS query drivers (Algorithms 1-5).

Structure and branch logic are copied from :mod:`repro.core.queries` — the
same insignificant / certain / significant split, the same Algorithm 5
case analysis, the same lookup-table final level — but every random
primitive is float-gated and every quantity derivable from the query's
parameterized total weight ``W`` alone is computed once per
:class:`FastCtx` and reused across queries:

- the group cut indices ``(i_hi, j2*span)`` per hierarchy level (exact
  ``Rat`` arithmetic, but once instead of per instance per query);
- a :class:`~repro.fastpath.geom.GeomPlan` per distinct skip-chain
  probability (dominating probabilities per level, ``min(2^(i+1)/W, 1)``
  per bucket index);
- the scaled float of ``1/W`` driving the per-item accept gates.

A ``FastCtx`` is valid for a fixed ``(hierarchy constants, W)`` pair;
:class:`~repro.core.halt.HALT` keys its context cache by ``(W.num, W.den)``
and drops it on rebuild, which is what makes ``query_many`` and repeated
identical queries amortize to a few dict hits of setup.

Exactness: the rejection identity makes the hot accept test *dyadic*.  A
candidate entry proposed under an unclamped dominating probability
``p' = 2^(i+1)/W`` is accepted with ``p_x / p' = w / 2^(i+1)``, which a
single ``(i+1)``-bit uniform decides exactly — no interval, no fallback.
All remaining tests go through the gated primitives, whose laws equal the
exact generators'.
"""

from __future__ import annotations

from ..randvar.bitsource import BitSource
from ..wordram.rational import Rat
from .gate import gated_bernoulli, gated_bernoulli_pow
from .geom import GeomPlan, fast_bounded_geometric, fast_skip_or_miss

__all__ = ["FastCtx", "fast_query_pss", "fast_bucket_chain"]


def _bump(stats: dict | None, key: str, amount: int = 1) -> None:
    if stats is not None:
        stats[key] = stats.get(key, 0) + amount


def _all_positive_entries(bg, out) -> None:
    """Degenerate W == 0 query: every positive-weight entry is certain."""
    node = bg.bucket_set.first_node()
    while node is not None:
        out.extend(bg.buckets[node.value].entries)
        node = node.next


class FastCtx:
    """Per-``(structure constants, total weight W)`` query context.

    ``config`` is a :class:`~repro.core.hierarchy.HierarchyConfig` for HALT
    hierarchies, or ``None`` for flat structures (BucketDPSS) that only
    need bucket plans.
    """

    __slots__ = (
        "total",
        "wn",
        "wd",
        "zero",
        "config",
        "_bucket_plans",
        "_cuts",
        "_snaps",
    )

    def __init__(self, total: Rat, config=None) -> None:
        self.total = total
        self.wn = total.num
        self.wd = total.den
        self.zero = total.num == 0
        self.config = config
        self._bucket_plans: dict[int, GeomPlan] = {}
        self._cuts: dict[int, tuple] = {}
        # Per-instance structural snapshots (certain buckets, significant
        # children, final-level configs), revalidated by BGStr.version.
        self._snaps: dict = {}

    @classmethod
    def cached(cls, cache: dict, total: Rat, config=None, limit: int = 32):
        """The shared per-structure context cache: one FastCtx per distinct
        parameterized total, cleared wholesale past ``limit`` entries."""
        key = (total.num, total.den)
        ctx = cache.get(key)
        if ctx is None:
            if len(cache) >= limit:
                cache.clear()
            ctx = cls(total, config)
            cache[key] = ctx
        return ctx

    def bucket_plan(self, index: int) -> GeomPlan:
        """Plan for the dominating probability ``min(2^(index+1)/W, 1)``."""
        plan = self._bucket_plans.get(index)
        if plan is None:
            plan = GeomPlan(self.wd << (index + 1), self.wn)
            self._bucket_plans[index] = plan
        return plan

    def level_cuts(self, inst) -> tuple:
        """``(i_hi, start_group, j2, dom_plan, pd_num, pd_den)`` for a
        level-1/2 instance — every term depends only on (level, W)."""
        cuts = self._cuts.get(inst.level)
        if cuts is None:
            span = inst.bg.span
            p_dom = inst.p_dom
            thr = self.total * p_dom
            j1 = thr.floor_log2() // span - 1
            j2 = -((-self.total.ceil_log2()) // span)
            dom_plan = GeomPlan(p_dom.num, p_dom.den)
            cuts = (
                (j1 + 1) * span - 1,
                max(0, j1 + 1),
                j2,
                dom_plan,
                p_dom.num,
                p_dom.den,
            )
            self._cuts[inst.level] = cuts
        return cuts

    def final_cuts(self, inst) -> tuple:
        """``(i1, i2, dom_plan, pd_num, pd_den)`` for a final-level
        instance (level 3; all final instances share ``p_dom = 2/m^2``)."""
        cuts = self._cuts.get(3)
        if cuts is None:
            p_dom = inst.p_dom
            thr = self.total * p_dom
            dom_plan = GeomPlan(p_dom.num, p_dom.den)
            cuts = (
                thr.floor_log2() - 1,
                self.total.ceil_log2(),
                dom_plan,
                p_dom.num,
                p_dom.den,
            )
            self._cuts[3] = cuts
        return cuts


def fast_query_insignificant(
    bg,
    i_hi: int,
    dom_plan: GeomPlan,
    pd_num: int,
    pd_den: int,
    ctx: FastCtx,
    source: BitSource,
    out: list,
    stats: dict | None = None,
) -> None:
    """Algorithm 2 with a gated B-Geo and gated accept ratios."""
    if i_hi < 0 or bg.size == 0:
        return
    cap = bg.capacity
    # One gated word decides the (overwhelmingly common) "no dominated
    # success within the capacity" event; see fast_skip_or_miss.
    k = fast_skip_or_miss(dom_plan, cap, source)
    if stats is not None:
        _bump(stats, "bgeo_draws")
    if k == 0:
        return
    if stats is not None:
        _bump(stats, "insignificant_scans")
    wn, wd = ctx.wn, ctx.wd
    seen = 0
    reached = False
    node = bg.bucket_set.first_node()
    while node is not None:
        index = node.value
        node = node.next
        if index > i_hi:
            break
        entries = bg.buckets[index].entries
        start = 0
        if not reached:
            if seen + len(entries) < k:
                seen += len(entries)
                continue
            # The k-th dominated coin landed inside this bucket.
            pos = k - seen - 1
            entry = entries[pos]
            # ratio = (w/W) / p_dom  (never clamps: w/W <= p_dom here)
            if gated_bernoulli(entry.weight * wd * pd_den, wn * pd_num, source):
                out.append(entry)
            reached = True
            start = pos + 1
        for entry in entries[start:]:
            if gated_bernoulli(entry.weight * wd, wn, source):
                out.append(entry)


def fast_extract_items(
    bg,
    candidates: list,
    ctx: FastCtx,
    source: BitSource,
    out: list,
    stats: dict | None = None,
) -> None:
    """Algorithm 5 with gated gates and dyadic accept tests."""
    wn, wd = ctx.wn, ctx.wd
    for bucket in candidates:
        n_i = len(bucket.entries)
        if n_i == 0:
            continue
        plan = ctx.bucket_plan(bucket.index)
        if stats is not None:
            _bump(stats, "candidate_buckets")
        if plan.one or plan.num * n_i >= plan.den:
            # Case 1: p * n_i >= 1 — the bucket was certain.
            k = fast_bounded_geometric(plan, n_i + 1, source)
            if stats is not None:
                _bump(stats, "bgeo_draws")
        else:
            # Case 2, fused: the paper gates with Ber(p*) and then draws
            # T-Geo(p, n_i); the joint law of (promising, first index) is
            #   P(promising ∧ first = i) = p* · p(1-p)^(i-1)/(1-(1-p)^n_i)
            #                            = (1-p)^(i-1) / n_i,
            # so one uniform index accepted with Ber((1-p)^(i-1)) — reject
            # meaning "bucket not promising" — samples it in one pass.
            k = 1 + source.random_below(n_i)
            if k > 1 and gated_bernoulli_pow(
                plan.s_num, plan.s_den, k - 1, source, plan.ls
            ) == 0:
                continue
            if stats is not None:
                _bump(stats, "tgeo_draws")
        if plan.one:
            # p' clamped to 1: accept with p_x = min(w/W, 1) directly.
            while k <= n_i:
                entry = bucket.kth(k)
                if gated_bernoulli(entry.weight * wd, wn, source):
                    out.append(entry)
                k += fast_bounded_geometric(plan, n_i + 1, source)
                if stats is not None:
                    _bump(stats, "bgeo_draws")
        else:
            # p' = 2^(i+1)/W < 1, so p_x/p' = w/2^(i+1): a dyadic accept.
            shift = bucket.index + 1
            while k <= n_i:
                entry = bucket.kth(k)
                if source.bits(shift) < entry.weight:
                    out.append(entry)
                k += fast_bounded_geometric(plan, n_i + 1, source)
                if stats is not None:
                    _bump(stats, "bgeo_draws")


def fast_query_pss(
    inst,
    ctx: FastCtx,
    source: BitSource,
    out: list,
    stats: dict | None = None,
) -> None:
    """Algorithm 1 at levels 1-2, context-cached and gated."""
    bg = inst.bg
    if ctx.zero:
        _all_positive_entries(bg, out)
        return
    i_hi, start, j2, dom_plan, pd_num, pd_den = ctx.level_cuts(inst)
    fast_query_insignificant(
        bg, i_hi, dom_plan, pd_num, pd_den, ctx, source, out, stats
    )
    # The certain buckets and significant children are fixed between
    # structural updates: snapshot them per BGStr.version.
    snap = ctx._snaps.get(inst)
    if snap is None or snap[0] != bg.version:
        certain: list = []
        i_lo = j2 * bg.span
        if i_lo < bg.universe:
            node = bg.bucket_set.first_node_from(max(0, i_lo))
            while node is not None:
                certain.append(bg.buckets[node.value].entries)
                node = node.next
        children: list = []
        node = bg.group_set.first_node_from(start)
        while node is not None:
            j = node.value
            node = node.next
            if j >= j2:
                break
            child = inst.children.get(j)
            if child is None:
                raise AssertionError(
                    f"non-empty group {j} has no child instance"
                )
            children.append(child)
        snap = (bg.version, certain, children)
        ctx._snaps[inst] = snap
    _, certain, children = snap
    for entries in certain:
        out.extend(entries)
    level1 = inst.level == 1
    for child in children:
        if stats is not None:
            _bump(stats, f"significant_groups_l{inst.level}")
        sampled: list = []
        if level1:
            fast_query_pss(child, ctx, source, sampled, stats)
        else:
            fast_query_final_level(child, ctx, source, sampled, stats)
        if sampled:
            fast_extract_items(
                bg, [e.payload for e in sampled], ctx, source, out, stats
            )


def fast_query_final_level(
    inst,
    ctx: FastCtx,
    source: BitSource,
    out: list,
    stats: dict | None = None,
) -> None:
    """The Section 4.4 final-level query: adapter + lookup table, gated."""
    bg = inst.bg
    if ctx.zero:
        _all_positive_entries(bg, out)
        return
    i1, i2, dom_plan, pd_num, pd_den = ctx.final_cuts(inst)
    fast_query_insignificant(
        bg, i1, dom_plan, pd_num, pd_den, ctx, source, out, stats
    )
    # Certain buckets, the 4S configuration, and every selected-bucket
    # rejection ratio are fixed between updates: snapshot per version.
    snap = ctx._snaps.get(inst)
    if snap is None or snap[0] != bg.version:
        certain: list = []
        if i2 < bg.universe:
            node = bg.bucket_set.first_node_from(max(0, i2))
            while node is not None:
                certain.append(bg.buckets[node.value].entries)
                node = node.next
        width = i2 - i1 - 1
        row = None
        accept: list = []
        if width > 0:
            lookup = inst.lookup
            if width > lookup.k:
                raise AssertionError(
                    f"significant window {width} exceeds lookup K={lookup.k}"
                )
            config = inst.adapter.config_window(i1, width, lookup.k)
            row = lookup.row(config)
            wn, wd = ctx.wn, ctx.wd
            m2 = inst.m * inst.m
            accept = [None] * (lookup.k + 1)
            for j in range(1, lookup.k + 1):
                bucket = bg.buckets.get(i1 + j)
                if bucket is None or config[j - 1] == 0:
                    continue
                c_j = len(bucket.entries)
                # ratio = min(sw/W, 1) / min(2^(j+1) c_j / m^2, 1)
                t_num = bucket.synthetic_weight * wd
                if t_num > wn:
                    t_num = wn
                p_num = (1 << (j + 1)) * c_j
                if p_num > m2:
                    p_num = m2
                r_num = t_num * m2
                r_den = wn * p_num
                accept[j] = (bucket, r_num, r_den, r_num / r_den)
        snap = (bg.version, certain, row, accept)
        ctx._snaps[inst] = snap
    _, certain, row, accept = snap
    for entries in certain:
        out.extend(entries)
    if row is None:
        return
    mask = row.sample(source)
    if stats is not None:
        _bump(stats, "lookup_queries")
    if mask:
        candidates: list = []
        j = 1
        while mask:
            if mask & 1:
                gate_args = accept[j]
                if gate_args is None:
                    raise AssertionError(
                        f"lookup selected empty bucket {i1 + j} (adapter drift)"
                    )
                bucket, r_num, r_den, q = gate_args
                if gated_bernoulli(r_num, r_den, source, q):
                    candidates.append(bucket)
            mask >>= 1
            j += 1
        if candidates:
            fast_extract_items(bg, candidates, ctx, source, out, stats)


def fast_bucket_chain(
    bucket,
    ctx: FastCtx,
    source: BitSource,
    out: list,
) -> None:
    """One dominated skip-chain over a flat bucket (BucketDPSS's walk).

    Mirrors the per-bucket loop of :meth:`repro.core.bucket_dpss.
    BucketDPSS.query` with the plan/gate machinery.
    """
    n_i = len(bucket.entries)
    if n_i == 0:
        return
    plan = ctx.bucket_plan(bucket.index)
    wn, wd = ctx.wn, ctx.wd
    k = fast_bounded_geometric(plan, n_i + 1, source)
    if plan.one:
        while k <= n_i:
            entry = bucket.kth(k)
            if gated_bernoulli(entry.weight * wd, wn, source):
                out.append(entry)
            k += fast_bounded_geometric(plan, n_i + 1, source)
    else:
        shift = bucket.index + 1
        while k <= n_i:
            entry = bucket.kth(k)
            if source.bits(shift) < entry.weight:
                out.append(entry)
            k += fast_bounded_geometric(plan, n_i + 1, source)
