"""Fast-path mirrors of the PSS query drivers (Algorithms 1-5).

Structure and branch logic are copied from :mod:`repro.core.queries` — the
same insignificant / certain / significant split, the same Algorithm 5
case analysis, the same lookup-table final level — but every random
primitive is float-gated and every quantity derivable from the query's
parameterized total weight ``W`` alone comes from the shared
:class:`~repro.core.plan.QueryPlan` (group-cut indices, per-probability
:class:`~repro.fastpath.geom.GeomPlan` skip plans, version-validated
structural snapshots), so repeated and batched queries amortize to a few
dict hits of setup.  The hot loops index the columnar bucket arrays
(``Bucket.weights``/``Bucket.entries``) and the flat
``BGStr.bucket_list`` directory instead of chasing per-entry attributes
and linked set nodes.

Exactness: the rejection identity makes the hot accept test *dyadic*.  A
candidate entry proposed under an unclamped dominating probability
``p' = 2^(i+1)/W`` is accepted with ``p_x / p' = w / 2^(i+1)``, which a
single ``(i+1)``-bit uniform decides exactly — no interval, no fallback.
All remaining tests go through the gated primitives, whose laws equal the
exact generators'.

The batched columnar executors in :mod:`repro.fastpath.columnar` run the
same per-draw decisions site-major over a whole batch; this module is the
single-draw walk (and the shared Algorithm 5 chain helpers it uses).
"""

from __future__ import annotations

from ..randvar.bitsource import BitSource
from .gate import gated_bernoulli, gated_bernoulli_pow
from .geom import GeomPlan, fast_bounded_geometric, fast_skip_or_miss

__all__ = ["fast_query_pss", "fast_bucket_chain"]


def _bump(stats: dict | None, key: str, amount: int = 1) -> None:
    if stats is not None:
        stats[key] = stats.get(key, 0) + amount


def _all_positive_entries(bg, out) -> None:
    """Degenerate W == 0 query: every positive-weight entry is certain."""
    buckets = bg.buckets
    for index in bg.bucket_list:
        out.extend(buckets[index].entries)


def fast_query_insignificant(
    bg,
    i_hi: int,
    dom_plan: GeomPlan,
    pd_num: int,
    pd_den: int,
    plan,
    source: BitSource,
    out: list,
    stats: dict | None = None,
) -> None:
    """Algorithm 2 with a gated B-Geo and gated accept ratios."""
    if i_hi < 0 or bg.size == 0:
        return
    cap = bg.capacity
    # One gated word decides the (overwhelmingly common) "no dominated
    # success within the capacity" event; see fast_skip_or_miss.
    k = fast_skip_or_miss(dom_plan, cap, source)
    if stats is not None:
        _bump(stats, "bgeo_draws")
    if k == 0:
        return
    if stats is not None:
        _bump(stats, "insignificant_scans")
    wn, wd = plan.wn, plan.wd
    buckets = bg.buckets
    seen = 0
    reached = False
    for index in bg.bucket_list:
        if index > i_hi:
            break
        bucket = buckets[index]
        entries = bucket.entries
        weights = bucket.weights
        n_i = len(entries)
        pos = 0
        if not reached:
            if seen + n_i < k:
                seen += n_i
                continue
            # The k-th dominated coin landed inside this bucket.
            pos = k - seen - 1
            # ratio = (w/W) / p_dom  (never clamps: w/W <= p_dom here)
            if gated_bernoulli(weights[pos] * wd * pd_den, wn * pd_num, source):
                out.append(entries[pos])
            reached = True
            pos += 1
        while pos < n_i:
            if gated_bernoulli(weights[pos] * wd, wn, source):
                out.append(entries[pos])
            pos += 1


def fast_extract_chain(
    bg,
    bucket,
    plan,
    source: BitSource,
    out: list,
    stats: dict | None = None,
) -> None:
    """The Algorithm 5 skip chain over one candidate bucket.

    A candidate ``B(i)`` arrived with probability ``min(1, 2^(i+1) n_i / W)``.
    Case 1 (``p n_i >= 1``): it was certain; a B-Geo walk finds the first
    potential entry (none, with the correct probability ``(1-p)^{n_i}``).
    Case 2 (``p n_i < 1``): the paper gates with Ber(p*) and then draws
    T-Geo(p, n_i); the joint law of (promising, first index) is
    ``P(promising ∧ first = i) = p* · p(1-p)^(i-1)/(1-(1-p)^n_i)
    = (1-p)^(i-1) / n_i``, so one uniform index accepted with
    ``Ber((1-p)^(i-1))`` — reject meaning "bucket not promising" — samples
    it in one pass.  Every potential entry is accepted with
    ``p_x / p >= 1/2``.
    """
    entries = bucket.entries
    weights = bucket.weights
    n_i = len(entries)
    if n_i == 0:
        return
    bplan = plan.bucket_plan(bucket.index)
    if stats is not None:
        _bump(stats, "candidate_buckets")
    if bplan.one or bplan.num * n_i >= bplan.den:
        # Case 1: p * n_i >= 1 — the bucket was certain.
        k = fast_bounded_geometric(bplan, n_i + 1, source)
        if stats is not None:
            _bump(stats, "bgeo_draws")
    else:
        # Case 2, fused (see the docstring).
        k = 1 + source.random_below(n_i)
        if k > 1 and gated_bernoulli_pow(
            bplan.s_num, bplan.s_den, k - 1, source, bplan.ls
        ) == 0:
            return
        if stats is not None:
            _bump(stats, "tgeo_draws")
    wn, wd = plan.wn, plan.wd
    if bplan.one:
        # p' clamped to 1: accept with p_x = min(w/W, 1) directly.
        while k <= n_i:
            if gated_bernoulli(weights[k - 1] * wd, wn, source):
                out.append(entries[k - 1])
            k += fast_bounded_geometric(bplan, n_i + 1, source)
            if stats is not None:
                _bump(stats, "bgeo_draws")
    else:
        # p' = 2^(i+1)/W < 1, so p_x/p' = w/2^(i+1): a dyadic accept.
        shift = bucket.index + 1
        bits = source.bits
        while k <= n_i:
            if bits(shift) < weights[k - 1]:
                out.append(entries[k - 1])
            k += fast_bounded_geometric(bplan, n_i + 1, source)
            if stats is not None:
                _bump(stats, "bgeo_draws")


def fast_query_pss(
    inst,
    plan,
    source: BitSource,
    out: list,
    stats: dict | None = None,
) -> None:
    """Algorithm 1 at levels 1-2, plan-cached and gated."""
    bg = inst.bg
    if plan.zero:
        _all_positive_entries(bg, out)
        return
    cuts = plan.level_cuts(inst)
    fast_query_insignificant(
        bg, cuts[0], cuts[3], cuts[4], cuts[5], plan, source, out, stats
    )
    # The certain entries and significant children are fixed between
    # structural updates: the plan snapshots them per BGStr.version.
    _, certain, children = plan.level_snapshot(inst)
    if certain:
        out.extend(certain)
    level1 = inst.level == 1
    for child in children:
        if stats is not None:
            _bump(stats, f"significant_groups_l{inst.level}")
        sampled: list = []
        if level1:
            fast_query_pss(child, plan, source, sampled, stats)
        else:
            fast_query_final_level(child, plan, source, sampled, stats)
        for entry in sampled:
            fast_extract_chain(bg, entry.payload, plan, source, out, stats)


def fast_query_final_level(
    inst,
    plan,
    source: BitSource,
    out: list,
    stats: dict | None = None,
) -> None:
    """The Section 4.4 final-level query: adapter + lookup table, gated."""
    bg = inst.bg
    if plan.zero:
        _all_positive_entries(bg, out)
        return
    cuts = plan.final_cuts(inst)
    i1 = cuts[0]
    fast_query_insignificant(
        bg, i1, cuts[2], cuts[3], cuts[4], plan, source, out, stats
    )
    # Certain entries, the 4S configuration row, and every selected-bucket
    # rejection ratio are fixed between updates: snapshotted per version.
    _, certain, row, accept = plan.final_snapshot(inst)
    if certain:
        out.extend(certain)
    if row is None:
        return
    mask = row.sample(source)
    if stats is not None:
        _bump(stats, "lookup_queries")
    if mask:
        j = 1
        while mask:
            if mask & 1:
                gate_args = accept[j]
                if gate_args is None:
                    raise AssertionError(
                        f"lookup selected empty bucket {i1 + j} (adapter drift)"
                    )
                bucket, r_num, r_den, q = gate_args
                if gated_bernoulli(r_num, r_den, source, q):
                    fast_extract_chain(bg, bucket, plan, source, out, stats)
            mask >>= 1
            j += 1


def fast_bucket_chain(
    bucket,
    plan,
    source: BitSource,
    out: list,
) -> None:
    """One dominated skip-chain over a flat bucket (BucketDPSS's walk).

    Mirrors the per-bucket loop of :meth:`repro.core.bucket_dpss.
    BucketDPSS.query` with the plan/gate machinery.
    """
    entries = bucket.entries
    weights = bucket.weights
    n_i = len(entries)
    if n_i == 0:
        return
    bplan = plan.bucket_plan(bucket.index)
    wn, wd = plan.wn, plan.wd
    k = fast_bounded_geometric(bplan, n_i + 1, source)
    if bplan.one:
        while k <= n_i:
            if gated_bernoulli(weights[k - 1] * wd, wn, source):
                out.append(entries[k - 1])
            k += fast_bounded_geometric(bplan, n_i + 1, source)
    else:
        shift = bucket.index + 1
        bits = source.bits
        while k <= n_i:
            if bits(shift) < weights[k - 1]:
                out.append(entries[k - 1])
            k += fast_bounded_geometric(bplan, n_i + 1, source)
