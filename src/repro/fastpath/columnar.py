"""Batched columnar query executors: one structure pass per batch.

``query_many`` traffic is batch-shaped (the serving layer fires many draws
at one ``(alpha, beta)``), but a per-draw walk re-pays the whole traversal
overhead — plan lookups, snapshot fetches, function dispatch — ``count``
times.  The executors here run *site-major* instead: the version/W-stable
skeleton of the query (cut indices, certain entries, significant children,
lookup rows, rejection constants, per-entry gate thresholds) is fetched
once per batch from the shared :class:`~repro.core.plan.QueryPlan`, and
each site loops over the draws with everything hoisted into locals,
drawing its geometric skips and Bernoulli gates straight over the flat
columnar bucket arrays.

Exactness: for each draw ``j``, the *decisions* taken are those of the
single-draw engine (:mod:`repro.fastpath.engine`) — the same exact-law
primitives with the same parameters — so each draw's output law is
exactly the independent product law, and draws are mutually independent
(every bit of the source feeds exactly one primitive of exactly one
draw).  The bit-stream *layout* differs from ``count`` single-draw calls:
draws interleave site by site, the hot inner loops dispatch through the
batch kernels of :mod:`repro.fastpath.kernels` (round-major grouped word
reads, classification vectorizable per backend, the stream itself never
vectorized), and skip-chain advances gate the "past the end" event
directly (:func:`~repro.fastpath.geom.fast_skip_or_miss`'s folding, whose
joint law equals the bounded-geometric advance it replaces).  The
exhaustive bit-tree enumerations in ``tests/fastpath/test_columnar_law.py``
pin the law claims on both engines and all kernel backends.

Data flow between hierarchy levels is columnar too: instead of allocating
``count`` intermediate lists per instance, each level returns a flat list
of ``(draw_index, entry)`` pairs that the parent level's Algorithm 5
chains consume pair by pair.
"""

from __future__ import annotations

import math

from ..randvar.approx import pow_approx_fn
from ..randvar.bitsource import BitSource
from . import gate
from .gate import (
    _resolve_lazy,
    bernoulli_given_u,
)
from .geom import fast_bounded_geometric, fast_truncated_geometric

__all__ = ["batched_query_pss", "batched_bucket_walk"]


def _bump(stats: dict | None, key: str, amount: int = 1) -> None:
    if stats is not None:
        stats[key] = stats.get(key, 0) + amount


def batched_query_pss(
    root,
    plan,
    source: BitSource,
    count: int,
    stats: dict | None = None,
) -> list[list]:
    """``count`` independent HALT draws in one hierarchy pass.

    Returns one *payload* list per draw (same per-draw order as the
    single-draw engine's output).  ``plan.zero`` must be handled by the
    caller (the zero-total query has no randomness to batch).
    """
    outs: list[list] = [[] for _ in range(count)]
    for j, entry in _batched_level(root, plan, source, count, stats):
        outs[j].append(entry.payload)
    return outs


def _batched_level(inst, plan, source, count, stats) -> list:
    """Algorithm 1 at levels 1-2, site-major; returns (draw, entry) pairs."""
    bg = inst.bg
    i_hi = plan.level_cuts(inst)[0]
    pairs: list = []
    _batched_insignificant(inst, i_hi, plan, source, count, pairs, stats)
    _, certain, children = plan.level_snapshot(inst)
    if certain:
        for j in range(count):
            for entry in certain:
                pairs.append((j, entry))
    level1 = inst.level == 1
    for child in children:
        if stats is not None:
            _bump(stats, f"significant_groups_l{inst.level}", count)
        # A small child instance's whole query outcome is a tabulated
        # product law (every final-level instance qualifies, by the
        # m = O(log log n0) bound): one alias draw per query draw stands
        # in for its full structural walk.
        row = plan.instance_alias(child)
        if row is not None:
            child_pairs = []
            plan.kernel.alias_draws(row, source, range(count), child_pairs)
        elif level1:
            child_pairs = _batched_level(child, plan, source, count, stats)
        else:
            child_pairs = _batched_final(child, plan, source, count, stats)
        # Group the sampled synthetic entries by the bucket they represent:
        # each bucket's Algorithm 5 chain constants are hoisted once and
        # every selecting draw's chain runs in one tight loop.  (A draw
        # selects a bucket at most once — synthetic entries are 1:1 with
        # buckets — and chains across draws/buckets are independent, so
        # regrouping cannot change any law.)
        groups: dict = {}
        for j, sampled in child_pairs:
            bucket = sampled.payload
            draws = groups.get(bucket)
            if draws is None:
                groups[bucket] = [j]
            else:
                draws.append(j)
        for bucket, draws in groups.items():
            _extract_bucket(bg, bucket, plan, source, draws, pairs, stats)
    return pairs


def _batched_final(inst, plan, source, count, stats) -> list:
    """The Section 4.4 final-level query, site-major."""
    bg = inst.bg
    i1 = plan.final_cuts(inst)[0]
    pairs: list = []
    _batched_insignificant(inst, i1, plan, source, count, pairs, stats)
    _, certain, row, accept = plan.final_snapshot(inst)
    if certain:
        for j in range(count):
            for entry in certain:
                pairs.append((j, entry))
    if row is None:
        return pairs
    if stats is not None:
        _bump(stats, "lookup_queries", count)
    #: selected[jj] = draws that selected (and rejection-accepted) slot jj;
    #: each slot's bucket then runs its chains grouped, constants hoisted.
    selected: list[list[int]] = [[] for _ in range(len(accept))]
    # Inline the alias-row sampler when the row exposes its columns
    # (AliasRow does); CellArrayRow falls back to row.sample.
    tf = getattr(row, "_tf", None)
    sample = row.sample
    g = gate.GATE_BITS
    scale = gate._SCALE
    bits = source.bits
    if tf is not None:
        values = row.values
        thresholds = row.thresholds
        aliases = row.aliases
        los, his = row.gate_bounds(g, scale)
        size = len(values)
        kbits = (size - 1).bit_length()
        both = kbits + g
        g_mask = (1 << g) - 1
    for j in range(count):
        if tf is None:
            mask = sample(source)
        else:
            # AliasRow.sample, inlined: exact uniform slot by rejection,
            # then the gated threshold Bernoulli — slot and gate word
            # fetched as one slice (slot bits high, so the stream layout
            # matches separate fetches; a rejected slot discards its gate
            # word, which is unused and biases nothing).
            if size == 1:
                slot = 0
                u = None
            else:
                while True:
                    w = bits(both)
                    slot = w >> g
                    if slot < size:
                        break
                u = w & g_mask
            if tf[slot] is None:
                mask = values[slot]
            else:
                if u is None:
                    u = bits(g)
                if u < los[slot]:
                    mask = values[slot]
                elif u > his[slot]:
                    mask = values[aliases[slot]]
                else:
                    thr = thresholds[slot]
                    if bernoulli_given_u(u, thr.num, thr.den, source):
                        mask = values[slot]
                    else:
                        mask = values[aliases[slot]]
        if not mask:
            continue
        jj = 1
        while mask:
            if mask & 1:
                gate_args = accept[jj]
                if gate_args is None:
                    raise AssertionError(
                        f"lookup selected empty bucket {i1 + jj} "
                        f"(adapter drift)"
                    )
                r_num, r_den, q = gate_args[1], gate_args[2], gate_args[3]
                # gated_bernoulli(r_num, r_den, source, q), inlined (the
                # ratio never clamps below; r_num == r_den accepts with no
                # bits, exactly as the gate's early return does).
                if r_num >= r_den:
                    selected[jj].append(j)
                else:
                    u = bits(g)
                    t = q * scale
                    slack = t * gate.REL_DIV + 8.0
                    if u < t - slack or (
                        u <= t + slack
                        and bernoulli_given_u(u, r_num, r_den, source)
                    ):
                        selected[jj].append(j)
            mask >>= 1
            jj += 1
    for jj, draws in enumerate(selected):
        if draws:
            _extract_bucket(
                bg, accept[jj][0], plan, source, draws, pairs, stats
            )
    return pairs


def _batched_insignificant(
    inst, i_hi, plan, source, count, pairs, stats
) -> None:
    """Algorithm 2 over the whole batch: one gate word per draw decides the
    overwhelmingly common "no dominated success" miss (fast_skip_or_miss,
    inlined with its constants hoisted out of the draw loop and two draws'
    gate words fetched per 64-bit ``bits`` slice)."""
    bg = inst.bg
    if i_hi < 0 or bg.size == 0:
        return
    dom_plan = (
        plan.level_cuts(inst)[3] if inst.level < 3 else plan.final_cuts(inst)[2]
    )
    cap = bg.capacity
    if stats is not None:
        _bump(stats, "bgeo_draws", count)
    if dom_plan.one:
        table = plan.insig_table(inst)
        for j in range(count):
            _insig_scan(table, 1, source, j, pairs, stats)
        return
    cached = dom_plan.miss_cache.get(cap)
    if cached is None:
        a = cap * dom_plan.ls
        cached = (math.exp(a), 1e-11 - a * 1e-15)
        dom_plan.miss_cache[cap] = cached
    x, rel = cached
    if count > 1 and x ** count > 0.5:
        # Sparse site (expected hits per batch below ~0.7): thin across
        # the *batch* dimension — the very trick Algorithm 2 applies
        # across entries.  Per-draw hits are iid Ber(1 - (1-p)^cap), so
        # one gate word decides "no hit in any remaining draw" and a
        # truncated geometric locates the next hitting draw.  Same
        # per-draw law; the guard keeps the locate's rejection cost O(1).
        _batched_insig_sparse(inst, dom_plan, cap, plan, source, count,
                              pairs, stats)
        return
    if count > 1 and x < 0.85:
        # Dense enough that the scan cascade fires every few draws: worth
        # pre-tabulating.
        row = plan.insig_alias(inst)
        if row is not None:
            # Small dense site: Algorithm 2's output here is the product
            # law over the few insignificant entries, pre-tabulated as an
            # exact alias row whose values are the sampled entry tuples —
            # one alias draw per query draw replaces the whole gate/scan
            # cascade, with exactly the same output law.
            plan.kernel.alias_draws(row, source, range(count), pairs)
            return
    t = x * gate._SCALE
    slack = t * rel + 8.0
    lo = t - slack
    # Kernel phase split: every draw's miss-gate word is read first (one
    # grouped fetch per 64-bit slice), then the rare non-miss draws resolve
    # in draw order with fresh bits — every bit still feeds exactly one
    # primitive of one draw, so laws and independence are untouched.
    for j, u in plan.kernel.miss_gate_hits(source, count, lo):
        _insig_resolve(inst, u, dom_plan, cap, plan, source, j, pairs, stats)


def _batched_insig_sparse(
    inst, dom_plan, cap, plan, source, count, pairs, stats
) -> None:
    """Algorithm 2 for a sparse site, thinned across the batch.

    The draws that do *not* miss form a Bernoulli process over the draw
    indices with rate ``q = 1 - (1-p)^cap``; its gaps are sampled exactly —
    "no hit among the remaining ``rem`` draws" is one ``Ber((1-p)^(rem *
    cap))`` gate word, and the first hitting draw a ``T-Geo(q, rem)``
    (uniform index accepted with ``Ber((1-p)^(cap*(i-1)))``).  Each hit
    then continues with the conditioned within-draw law, ``k ~ T-Geo(p,
    cap)``, exactly as the per-draw gate path does."""
    g = gate.GATE_BITS
    scale = gate._SCALE
    bits = source.bits
    ls = dom_plan.ls
    s_num = dom_plan.s_num
    s_den = dom_plan.s_den
    base = 0
    rem = count
    while rem > 0:
        e = rem * cap
        a = e * ls
        t = math.exp(a) * scale
        slack = t * (1e-11 - a * 1e-15) + 8.0
        u = bits(g)
        if u < t - slack:
            return  # no hit in any remaining draw
        if u <= t + slack and _resolve_lazy(
            u, g, pow_approx_fn(s_num, s_den, e), source
        ) == 1:
            return
        # First hitting draw offset i in [1, rem] ~ T-Geo(q, rem).
        if rem == 1:
            i = 1
        else:
            kb = (rem - 1).bit_length()
            while True:
                while True:
                    v = bits(kb)
                    if v < rem:
                        break
                i = 1 + v
                if i == 1:
                    break
                a = cap * (i - 1) * ls
                t = math.exp(a) * scale
                slack = t * (1e-11 - a * 1e-15) + 8.0
                u = bits(g)
                if u < t - slack or (
                    u <= t + slack and _resolve_lazy(
                        u, g, pow_approx_fn(s_num, s_den, cap * (i - 1)),
                        source,
                    ) == 1
                ):
                    break
        k = fast_truncated_geometric(dom_plan, cap, source)
        _insig_scan(plan.insig_table(inst), k, source, base + i - 1, pairs,
                    stats)
        base += i
        rem -= i


def _insig_resolve(
    inst, u, dom_plan, cap, plan, source, j, pairs, stats
) -> None:
    """Finish one draw's Algorithm 2 after its miss gate did not decide
    "miss" outright: resolve the (narrow) uncertainty band exactly, then
    locate the first dominated success and scan."""
    x, rel = dom_plan.miss_cache[cap]
    t = x * gate._SCALE
    if u <= t + (t * rel + 8.0) and _resolve_lazy(
        u, gate.GATE_BITS,
        pow_approx_fn(dom_plan.s_num, dom_plan.s_den, cap), source
    ) == 1:
        return  # the exact tail still says miss
    num = dom_plan.num
    den = dom_plan.den
    if cap > 2 and cap * num < den:
        # T-Geo(p, cap), case 2.2 of fast_truncated_geometric, inlined:
        # uniform index accepted with Ber((1-p)^(k-1)).
        g = gate.GATE_BITS
        scale = gate._SCALE
        bits = source.bits
        ls = dom_plan.ls
        kb = (cap - 1).bit_length()
        while True:
            while True:
                v = bits(kb)
                if v < cap:
                    break
            k = 1 + v
            if k == 1:
                break
            a = (k - 1) * ls
            t = math.exp(a) * scale
            slack = t * (1e-11 - a * 1e-15) + 8.0
            u2 = bits(g)
            if u2 < t - slack or (
                u2 <= t + slack and _resolve_lazy(
                    u2, g,
                    pow_approx_fn(dom_plan.s_num, dom_plan.s_den, k - 1),
                    source,
                ) == 1
            ):
                break
    else:
        k = fast_truncated_geometric(dom_plan, cap, source)
    _insig_scan(plan.insig_table(inst), k, source, j, pairs, stats)


def _insig_scan(table, k, source, j, pairs, stats) -> None:
    """The (rare) Algorithm 2 hit branch for one draw, over the plan's
    precomputed scan table: the k-th dominated coin's entry takes its
    ratio gate, every later insignificant entry its direct ``Ber(w/W)``
    gate — one stored threshold compare per entry, falling back to the
    exact tail only inside the float band."""
    if stats is not None:
        _bump(stats, "insignificant_scans")
    entries, alo, ahi, anum, aden, rlo, rhi, rnum, rden = table
    pos = k - 1
    n = len(entries)
    if pos >= n:
        return  # the k-th coin landed beyond the live insignificant entries
    g = gate.GATE_BITS
    bits = source.bits
    u = bits(g)
    if u < rlo[pos] or (
        u <= rhi[pos] and bernoulli_given_u(u, rnum[pos], rden, source)
    ):
        pairs.append((j, entries[pos]))
    pos += 1
    while pos < n:
        u = bits(g)
        if u < alo[pos] or (
            u <= ahi[pos] and bernoulli_given_u(u, anum[pos], aden, source)
        ):
            pairs.append((j, entries[pos]))
        pos += 1


def _extract_bucket(bg, bucket, plan, source, draws, pairs, stats) -> None:
    """Algorithm 5 skip chains over one candidate bucket for every draw
    that selected it, constants hoisted once.

    Same per-draw output law as :func:`repro.fastpath.engine.
    fast_extract_chain`, with the batch-only restructurings:

    - ``p' = 1`` (clamped): every B-Geo step is deterministically 1, so the
      chain is a plain scan with one gated accept per entry (thresholds
      computed once per bucket per batch);
    - ``p' >= 1/4``: ``B-Geo(p', n+1)`` is a run of sequential gated
      flips, run inline and bounded by the *remaining* positions (flips
      past the end cannot affect the output);
    - ``p' < 1/4``: the entry draw follows the engine's case split, and
      each advance picks, by the remaining length ``rem``, between the
      inline block-decomposition B-Geo (likely to land: ``p'·rem >= 1``)
      and a one-word "past the end" gate (likely to miss:
      :func:`~repro.fastpath.geom.fast_skip_or_miss`'s folding, whose
      joint law equals the bounded-geometric advance either way).
    """
    entries = bucket.entries
    weights = bucket.weights
    n_i = len(entries)
    if n_i == 0:
        return
    if stats is not None:
        _bump(stats, "candidate_buckets", len(draws))
    if n_i <= plan.CHAIN_ALIAS_MAX:
        row = plan.chain_alias(bg, bucket)
        if row is not None:
            # Small bucket: the whole chain is one draw from the
            # pre-tabulated product law (see QueryPlan.chain_alias).
            plan.kernel.alias_draws(row, source, draws, pairs)
            return
    bplan = plan.bucket_plan(bucket.index)
    wn, wd = plan.wn, plan.wd
    g = gate.GATE_BITS
    scale = gate._SCALE
    bits = source.bits
    if bplan.one:
        # p' clamped to 1: visit every entry, accept with min(w/W, 1)
        # (the B-Geo steps are all 1 and draw no bits).  Certain entries
        # (w >= W) accept bit-free; the uncertain ones form a dense
        # draws x entries gate matrix the kernel reads and classifies.
        if stats is not None:
            _bump(stats, "bgeo_draws", (n_i + 1) * len(draws))
        cert: list[int] = []
        unc_pos: list[int] = []
        los: list[float] = []
        his: list[float] = []
        nums: list[int] = []
        for pos, w in enumerate(weights):
            anum = w * wd
            if anum >= wn:
                cert.append(pos)
            else:
                t = (anum / wn) * scale
                slack = t * gate.REL_DIV + 8.0
                unc_pos.append(pos)
                los.append(t - slack)
                his.append(t + slack)
                nums.append(anum)
        if not unc_pos:
            for j in draws:
                for pos in cert:
                    pairs.append((j, entries[pos]))
            return
        rows = plan.kernel.gate_rows(source, len(draws), los, his, nums, wn)
        if cert:
            for j, acc in zip(draws, rows):
                merged = cert + [unc_pos[idx] for idx in acc]
                merged.sort()
                for pos in merged:
                    pairs.append((j, entries[pos]))
        else:
            for j, acc in zip(draws, rows):
                for idx in acc:
                    pairs.append((j, entries[unc_pos[idx]]))
        return
    num = bplan.num
    den = bplan.den
    shift = bucket.index + 1
    n_plus_1 = n_i + 1
    case2 = num * n_i < den
    if case2 and n_i > 1:
        kb = (n_i - 1).bit_length()
    if bplan.seq:
        # p' >= 1/4: geometric steps are short runs of gated flips; flip
        # through the positions directly (bounded by what remains) and
        # take the dyadic accept at each success.
        t = bplan.q * scale
        slack = t * gate.REL_DIV + 8.0
        flo = t - slack
        fhi = t + slack
        for j in draws:
            if case2:
                # Case 2 entry: uniform index gated by Ber((1-p)^(k-1)).
                if n_i == 1:
                    k = 1
                else:
                    while True:
                        v = bits(kb)
                        if v < n_i:
                            break
                    k = 1 + v
                if k > 1 and _pow_gate(bplan, k - 1, source) == 0:
                    continue
                if stats is not None:
                    _bump(stats, "tgeo_draws")
                if bits(shift) < weights[k - 1]:
                    pairs.append((j, entries[k - 1]))
            else:
                if stats is not None:
                    _bump(stats, "bgeo_draws")
                k = 0
            while k < n_i:
                k += 1
                u = bits(g)
                if u < flo or (
                    u <= fhi and bernoulli_given_u(u, num, den, source)
                ):
                    if bits(shift) < weights[k - 1]:
                        pairs.append((j, entries[k - 1]))
        return
    if case2:
        # p' < 1/4 with p'·n_i < 1: fused case-2 entry, and every advance
        # is the likely-miss one-word gate (num·rem < den for all rem) —
        # the whole grouped chain is the kernel's round-major phases.
        plan.kernel.chain_case2(
            bplan, entries, weights, shift, n_i, source, draws, pairs, stats
        )
        return
    # p' < 1/4 case 1 (p'·n_i >= 1): hoist the block-decomposition
    # constants (Fact 3 split) and the miss-gate cache for the advance
    # hybrid, and walk each draw's chain scalar.
    m = bplan.m
    k_blk = bplan.k
    ls = bplan.ls
    s_num = bplan.s_num
    s_den = bplan.s_den
    bt = bplan.pow_m * scale
    bslack = bt * bplan.rel_m + 8.0
    blo = bt - bslack
    bhi = bt + bslack
    miss_cache = bplan.miss_cache
    for j in draws:
        # Case 1: first potential position via inline block B-Geo.
        blocks = 0
        k = n_plus_1
        while blocks * m < n_plus_1:
            u = bits(g)
            if u > bhi:
                k = 0  # success inside this block: draw the offset
                break
            if u >= blo and _resolve_lazy(
                u, g, pow_approx_fn(s_num, s_den, m), source
            ) == 0:
                k = 0
                break
            blocks += 1
        if k == 0:
            while True:
                r = bits(k_blk)
                if r == 0:
                    break
                u = bits(g)
                a = r * ls
                t = math.exp(a) * scale
                slack = t * (1e-11 - a * 1e-15) + 8.0
                if u < t - slack or (
                    u <= t + slack and _resolve_lazy(
                        u, g, pow_approx_fn(s_num, s_den, r), source
                    ) == 1
                ):
                    break
            k = blocks * m + r + 1
            if k > n_i:
                k = n_plus_1
        if stats is not None:
            _bump(stats, "bgeo_draws")
        if k > n_i:
            continue
        while True:
            if bits(shift) < weights[k - 1]:
                pairs.append((j, entries[k - 1]))
            rem = n_i - k
            if stats is not None:
                _bump(stats, "bgeo_draws")
            if rem <= 0:
                break
            if num * rem < den:
                # Likely miss: one gate word decides "past the end".
                cached = miss_cache.get(rem)
                if cached is None:
                    a = rem * ls
                    cached = (math.exp(a), 1e-11 - a * 1e-15)
                    miss_cache[rem] = cached
                x, rel = cached
                u = bits(g)
                t = x * scale
                slack = t * rel + 8.0
                if u < t - slack:
                    break
                if u <= t + slack and _resolve_lazy(
                    u, g, pow_approx_fn(s_num, s_den, rem), source
                ) == 1:
                    break
                k += fast_truncated_geometric(bplan, rem, source)
            else:
                # Likely to land: inline block B-Geo, exit past the end.
                blocks = 0
                step = n_plus_1
                while blocks * m < n_plus_1:
                    u = bits(g)
                    if u > bhi:
                        step = 0
                        break
                    if u >= blo and _resolve_lazy(
                        u, g, pow_approx_fn(s_num, s_den, m), source
                    ) == 0:
                        step = 0
                        break
                    blocks += 1
                if step == 0:
                    while True:
                        r = bits(k_blk)
                        if r == 0:
                            break
                        u = bits(g)
                        a = r * ls
                        t = math.exp(a) * scale
                        slack = t * (1e-11 - a * 1e-15) + 8.0
                        if u < t - slack or (
                            u <= t + slack and _resolve_lazy(
                                u, g, pow_approx_fn(s_num, s_den, r), source
                            ) == 1
                        ):
                            break
                    step = blocks * m + r + 1
                k += step
                if k > n_i:
                    break


def _pow_gate(bplan, exponent: int, source) -> int:
    """``Ber((1-p')^exponent)`` with the plan's cached ``log(1-p')`` —
    :func:`repro.fastpath.gate.gated_bernoulli_pow`, inlined."""
    u = source.bits(gate.GATE_BITS)
    a = exponent * bplan.ls
    t = math.exp(a) * gate._SCALE
    slack = t * (1e-11 - a * 1e-15) + 8.0
    if u < t - slack:
        return 1
    if u > t + slack:
        return 0
    return _resolve_lazy(
        u, gate.GATE_BITS,
        pow_approx_fn(bplan.s_num, bplan.s_den, exponent), source,
    )


def batched_bucket_walk(
    bg,
    plan,
    source: BitSource,
    count: int,
) -> list[list]:
    """``count`` independent BucketDPSS draws, bucket-major.

    The single-level bucket walk (:meth:`repro.core.bucket_dpss.BucketDPSS.
    query`) visits every non-empty bucket per draw; here each bucket is
    visited once with its :class:`~repro.fastpath.geom.GeomPlan` and
    columnar arrays in locals, and the skip chain runs for all draws.
    Returns one *payload* list per draw.
    """
    outs: list[list] = [[] for _ in range(count)]
    buckets = bg.buckets
    for index in bg.bucket_list:
        bucket = buckets[index]
        payloads = bucket.payloads
        weights = bucket.weights
        n_i = len(payloads)
        if n_i == 0:
            continue
        bplan = plan.bucket_plan(index)
        wn, wd = plan.wn, plan.wd
        n_plus_1 = n_i + 1
        if bplan.one:
            # p' clamped to 1: every B-Geo step is 1 bit-free, so each
            # draw takes one min(w/W, 1) accept per entry — certain
            # accepts (w >= W) and certain rejects (w <= 0) draw no bits,
            # the rest form the kernel's dense gate matrix.
            scale = gate._SCALE
            cert: list[int] = []
            unc_pos: list[int] = []
            los: list[float] = []
            his: list[float] = []
            nums: list[int] = []
            for pos, w in enumerate(weights):
                anum = w * wd
                if anum >= wn:
                    cert.append(pos)
                elif anum > 0:
                    t = (anum / wn) * scale
                    slack = t * gate.REL_DIV + 8.0
                    unc_pos.append(pos)
                    los.append(t - slack)
                    his.append(t + slack)
                    nums.append(anum)
            if not unc_pos:
                for out in outs:
                    for pos in cert:
                        out.append(payloads[pos])
                continue
            rows = plan.kernel.gate_rows(source, count, los, his, nums, wn)
            if cert:
                for out, acc in zip(outs, rows):
                    merged = cert + [unc_pos[idx] for idx in acc]
                    merged.sort()
                    for pos in merged:
                        out.append(payloads[pos])
            else:
                for out, acc in zip(outs, rows):
                    for idx in acc:
                        out.append(payloads[unc_pos[idx]])
        else:
            shift = index + 1
            bits = source.bits
            for out in outs:
                k = fast_bounded_geometric(bplan, n_plus_1, source)
                while k <= n_i:
                    if bits(shift) < weights[k - 1]:
                        out.append(payloads[k - 1])
                    k += fast_bounded_geometric(bplan, n_plus_1, source)
    return outs
