"""Interchangeable batch kernels for the columnar executors' hot loops.

The three inner loops of :mod:`repro.fastpath.columnar` that touch every
batch element — the per-draw miss-gate words of Algorithm 2, the alias-row
batch draws, and the grouped Algorithm 5 chain work — are implemented here
twice behind one interface:

- :mod:`.pybackend` — the zero-dependency reference backend: plain-Python
  loops over block word reads.  Always available; the default install's
  behavior is unchanged.
- :mod:`.npbackend` — an optional numpy backend that vectorizes the
  *classification* arithmetic (gate comparisons, alias-row bound gathers,
  chain-advance weight compares) over the same columns.  Loaded only when
  numpy imports.

**The bit stream is never vectorized.**  Both backends read the identical
logical word sequence from the shared :class:`~repro.randvar.bitsource.
BitSource` (``bits(a + b)`` is exactly ``bits(a)`` then ``bits(b)``, so
block fetches are stream-equivalent to repeated fetches), and every float
threshold a kernel compares against is computed by scalar ``math.exp`` /
division through the shared caches — a backend only *compares* words
against ready bounds, and the undecided band always falls back to the
same exact scalar resolution in the same order.  Outputs and bit
consumption are therefore byte-identical across backends; the law suites
in ``tests/fastpath`` parameterize over installed backends and
``tests/fastpath/test_kernel_backends.py`` pins cross-backend identity.

Selection happens at import: ``REPRO_KERNEL=numpy|python`` forces a
backend (erroring if a forced numpy is not importable); otherwise numpy
is used when available.  :class:`~repro.core.plan.QueryPlan` captures the
active backend at construction, so both the fast engine and the service's
sharded ``query_many`` dispatch through it, and ``activate`` lets tests
swap backends between structure builds.  Every kernel call counts its
batch elements into ``repro_kernel_batch_elems_total{backend=...}`` on
the process-default metrics registry.
"""

from __future__ import annotations

import math
import os

__all__ = [
    "activate",
    "active",
    "batch_elems",
    "get",
    "kernel_name",
    "names",
    "pow_bounds",
    "read_words",
]

METRIC_NAME = "repro_kernel_batch_elems_total"
METRIC_HELP = (
    "Batch elements processed by the columnar kernel layer (draw slots "
    "per kernel call), by kernel backend"
)


def read_words(bits, n: int, width: int) -> list[int]:
    """The next ``n`` stream words of ``width`` bits each, as Python ints.

    Fetches are grouped so each ``bits`` call stays within one 64-bit
    buffered slice (``bits(k)`` is cheapest for ``k <= 64``); the result
    is identical to ``[bits(width) for _ in range(n)]`` because ``bits``
    is a plain MSB-first stream reader.  This is the single read primitive
    both backends share — the stream schedule is defined once, here.
    """
    if n <= 0:
        return []
    per = 64 // width if width < 64 else 1
    if per <= 1 or n == 1:
        return [bits(width) for _ in range(n)]
    out: list[int] = []
    append = out.append
    mask = (1 << width) - 1
    full, rest = divmod(n, per)
    span = per * width
    shifts = range(span - width, -1, -width)
    for _ in range(full):
        w = bits(span)
        for s in shifts:
            append((w >> s) & mask)
    if rest:
        w = bits(rest * width)
        for s in range(rest * width - width, -1, -width):
            append((w >> s) & mask)
    return out


def pow_bounds(bplan, n_i: int, g: int, scale: float) -> tuple[list, list]:
    """Per-exponent ``(lo, hi)`` decision bounds for ``Ber((1-p)^e)``,
    ``e`` in ``[1, n_i - 1]``, indexed by ``e`` (index 0 carries the
    always-accept sentinel ``(+inf, -inf)`` for the exponent-0 case).

    The same certified formula as the inline gates (grep ``1e-11 - a *
    1e-15``), computed once per ``(gate width, n_i)`` with scalar
    ``math.exp`` and cached on ``bplan.kernel_cache`` — backends of either
    kind compare words against these exact floats, which is what keeps
    their decisions bit-identical.
    """
    cache = bplan.kernel_cache
    key = (g, n_i)
    got = cache.get(key)
    if got is None:
        ls = bplan.ls
        los = [float("inf")]
        his = [float("-inf")]
        for e in range(1, n_i):
            a = e * ls
            t = math.exp(a) * scale
            slack = t * (1e-11 - a * 1e-15) + 8.0
            los.append(t - slack)
            his.append(t + slack)
        got = (los, his)
        cache[key] = got
    return got


from . import pybackend  # noqa: E402  (needs read_words/pow_bounds above)

try:  # optional backend: any numpy import failure means "not installed"
    from . import npbackend as _npbackend
except Exception:  # pragma: no cover - environment-dependent
    _npbackend = None

_BACKENDS = {pybackend.NAME: pybackend}
if _npbackend is not None:
    _BACKENDS[_npbackend.NAME] = _npbackend

_FORCED = os.environ.get("REPRO_KERNEL", "").strip().lower()
if _FORCED:
    if _FORCED not in ("numpy", "python"):
        raise ValueError(
            f"REPRO_KERNEL must be 'numpy' or 'python', got {_FORCED!r}"
        )
    if _FORCED not in _BACKENDS:
        raise ImportError(
            "REPRO_KERNEL=numpy requested but numpy is not importable"
        )
    _ACTIVE = _BACKENDS[_FORCED]
else:
    _ACTIVE = _BACKENDS.get("numpy", pybackend)


def names() -> list[str]:
    """The installed backend names, sorted."""
    return sorted(_BACKENDS)


def get(name: str):
    """The backend module named ``name`` (KeyError if not installed)."""
    return _BACKENDS[name]


def active():
    """The active backend module (what new ``QueryPlan``s capture)."""
    return _ACTIVE


def kernel_name() -> str:
    """The active backend's name (``stats`` verb / bench record value)."""
    return _ACTIVE.NAME


def activate(name: str) -> str:
    """Swap the active backend; returns the previous name.  Test hook —
    plans capture the backend at construction, so swap *before* building
    the structure under test."""
    global _ACTIVE
    previous = _ACTIVE.NAME
    _ACTIVE = _BACKENDS[name]
    return previous


def batch_elems() -> int:
    """Total batch elements processed by every installed backend (the
    ``stats`` verb reads deltas of this around query fan-outs)."""
    return sum(backend._ELEMS.value for backend in _BACKENDS.values())
