"""The numpy kernel backend: vectorized classification, scalar stream.

Every word this backend consumes comes from the shared
:func:`~repro.fastpath.kernels.read_words` schedule — identical to the
pure-Python backend's reads — and every threshold it compares against is
one of the scalar-``math.exp`` bounds from the shared caches.  numpy only
*classifies*: gate compares, alias-row bound gathers, chain-advance
weight compares.  The undecided band and all geometry draws resolve
through the exact scalar primitives in the stream's draw order, so the
decisions (and therefore the output and the bits consumed) are
byte-identical to :mod:`.pybackend`.

Batches below ``_MIN_VEC`` elements, and word widths that would not fit
``int64`` arrays, delegate to the pure-Python implementations.  Both
conditions depend only on structure constants and pending-batch sizes —
never on word values in a way the other backend can't reproduce — so
delegation keeps the streams aligned.
"""

from __future__ import annotations

import numpy as np

from ...obs.metrics import OBS as _OBS, REGISTRY as _REGISTRY
from ...randvar.approx import pow_approx_fn
from .. import gate
from ..gate import _resolve_lazy, bernoulli_given_u
from ..geom import fast_truncated_geometric
from . import METRIC_HELP, METRIC_NAME, pow_bounds, read_words
from . import pybackend as _py

NAME = "numpy"

_ELEMS = _REGISTRY.counter(METRIC_NAME, METRIC_HELP, backend=NAME)

# Below this many elements the array construction overhead loses to the
# plain loop; delegate to pybackend (stream-identical by construction).
_MIN_VEC = 16

# Fused words wider than this would overflow int64 when loaded as one
# column; such structures take the scalar path on both backends.
_MAX_WIDTH = 62


def miss_gate_hits(source, count, lo):
    if _OBS.enabled:
        _ELEMS.value += count
    words = read_words(source.bits, count, gate.GATE_BITS)
    if count < _MIN_VEC:
        return [(j, u) for j, u in enumerate(words) if u >= lo]
    arr = np.array(words, dtype=np.float64)
    return [(int(j), words[j]) for j in np.nonzero(arr >= lo)[0]]


def _row_bounds(row, g):
    cached = row.kernel_cache
    if cached is not None and cached[0] == g:
        return cached[1], cached[2]
    los, his = row.gate_bounds(g, gate._SCALE)
    nlos = np.array(los, dtype=np.float64)
    nhis = np.array(his, dtype=np.float64)
    row.kernel_cache = (g, nlos, nhis)
    return nlos, nhis


def alias_draws(row, source, draw_indices, pairs):
    if _OBS.enabled:
        _ELEMS.value += len(draw_indices)
    size = len(row.values)
    g = gate.GATE_BITS
    kbits = (size - 1).bit_length()
    if (
        size == 1
        or len(draw_indices) < _MIN_VEC
        or kbits + g > _MAX_WIDTH
    ):
        _py._alias_scalar(row, source, draw_indices, pairs)
        return
    nlos, nhis = _row_bounds(row, g)
    values = row.values
    thresholds = row.thresholds
    aliases = row.aliases
    both = kbits + g
    g_mask = (1 << g) - 1
    bits = source.bits
    append = pairs.append
    pending = list(draw_indices)
    while pending:
        if len(pending) < _MIN_VEC:
            # Remaining rounds read len(pending) words per round either
            # way — the scalar loop continues the identical stream.
            _py._alias_scalar(row, source, pending, pairs)
            return
        words = read_words(bits, len(pending), both)
        w = np.array(words, dtype=np.int64)
        slots = w >> g
        ok = slots < size
        safe = np.where(ok, slots, 0)
        u = (w & g_mask).astype(np.float64)
        # 0 = rejected slot, 1 = keep slot, 2 = take alias, 3 = resolve
        code = np.where(
            u < nlos[safe], 1, np.where(u > nhis[safe], 2, 3)
        )
        code = np.where(ok, code, 0)
        nxt = []
        for i, c in enumerate(code.tolist()):
            j = pending[i]
            if c == 0:
                nxt.append(j)
                continue
            slot = words[i] >> g
            if c == 1:
                picked = values[slot]
            elif c == 2:
                picked = values[aliases[slot]]
            else:
                thr = thresholds[slot]
                if bernoulli_given_u(
                    words[i] & g_mask, thr.num, thr.den, source
                ):
                    picked = values[slot]
                else:
                    picked = values[aliases[slot]]
            for entry in picked:
                append((j, entry))
        pending = nxt


def gate_rows(source, nrows, los, his, nums, den):
    m = len(los)
    if _OBS.enabled:
        _ELEMS.value += nrows * m
    words = read_words(source.bits, nrows * m, gate.GATE_BITS)
    if nrows * m < _MIN_VEC:
        return _py._gate_rows_words(words, nrows, los, his, nums, den, source)
    arr = np.array(words, dtype=np.float64).reshape(nrows, m)
    lo_np = np.array(los, dtype=np.float64)
    hi_np = np.array(his, dtype=np.float64)
    acc = arr < lo_np
    amb = (~acc) & (arr <= hi_np)
    if amb.any():
        # np.nonzero on a 2-D array walks row-major — the exact order the
        # scalar backend resolves ambiguous words in.
        for r, i in zip(*np.nonzero(amb)):
            idx = int(i)
            acc[r, idx] = (
                bernoulli_given_u(
                    words[int(r) * m + idx], nums[idx], den, source
                )
                == 1
            )
    return [np.nonzero(row_acc)[0].tolist() for row_acc in acc]


def _plan_bounds(bplan, n_i, g, scale):
    key = ("np", g, n_i)
    got = bplan.kernel_cache.get(key)
    if got is None:
        plos, phis = pow_bounds(bplan, n_i, g, scale)
        got = (
            np.array(plos, dtype=np.float64),
            np.array(phis, dtype=np.float64),
        )
        bplan.kernel_cache[key] = got
    return got


def chain_case2(
    bplan, entries, weights, shift, n_i, source, draws, pairs, stats
):
    if _OBS.enabled:
        _ELEMS.value += len(draws)
    g = gate.GATE_BITS
    kb = (n_i - 1).bit_length() if n_i > 1 else 0
    if (
        len(draws) < _MIN_VEC
        or kb + g > _MAX_WIDTH
        or shift > _MAX_WIDTH
    ):
        _py._chain_case2_impl(
            bplan, entries, weights, shift, n_i, source, draws, pairs, stats
        )
        return
    scale = gate._SCALE
    live = _np_case2_entry(bplan, n_i, source, draws, g, scale)
    if stats is not None:
        stats["tgeo_draws"] = stats.get("tgeo_draws", 0) + len(live)
    _np_advance_rounds(
        bplan, entries, weights, shift, n_i, source, live, pairs, stats
    )


def _np_case2_entry(bplan, n_i, source, draws, g, scale):
    if n_i == 1:
        return [(j, 1) for j in draws]
    plos_np, phis_np = _plan_bounds(bplan, n_i, g, scale)
    both = (n_i - 1).bit_length() + g
    g_mask = (1 << g) - 1
    bits = source.bits
    s_num = bplan.s_num
    s_den = bplan.s_den
    live = []
    pending = draws
    while pending:
        if len(pending) < _MIN_VEC:
            live.extend(
                _py._case2_entry(bplan, n_i, source, pending, g, scale)
            )
            break
        words = read_words(bits, len(pending), both)
        w = np.array(words, dtype=np.int64)
        v = w >> g
        ok = v < n_i
        safe = np.where(ok, v, 0)
        u = (w & g_mask).astype(np.float64)
        # 0 = re-pend, 1 = accept (plos[0] = +inf covers v == 0),
        # 2 = drop, 3 = resolve
        code = np.where(
            u < plos_np[safe], 1, np.where(u > phis_np[safe], 2, 3)
        )
        code = np.where(ok, code, 0)
        nxt = []
        for i, c in enumerate(code.tolist()):
            j = pending[i]
            if c == 0:
                nxt.append(j)
                continue
            if c == 2:
                continue
            vi = words[i] >> g
            if c == 3 and _resolve_lazy(
                words[i] & g_mask, g, pow_approx_fn(s_num, s_den, vi), source
            ) != 1:
                continue
            live.append((j, vi + 1))
        pending = nxt
    return live


def _np_advance_rounds(
    bplan, entries, weights, shift, n_i, source, live, pairs, stats
):
    g = gate.GATE_BITS
    plos_np, phis_np = _plan_bounds(bplan, n_i, g, gate._SCALE)
    bits = source.bits
    append = pairs.append
    s_num = bplan.s_num
    s_den = bplan.s_den
    while live:
        if len(live) < _MIN_VEC:
            _py._advance_rounds(
                bplan, entries, weights, shift, n_i, source, live, pairs,
                stats,
            )
            return
        nd = len(live)
        wwords = read_words(bits, nd, shift)
        warr = np.array(wwords, dtype=np.int64)
        # Gather only the live chains' weights — the bucket column can be
        # arbitrarily longer than the batch, so a full conversion would
        # swamp the round.
        wts = np.fromiter(
            (weights[jk[1] - 1] for jk in live), np.int64, nd
        )
        hits = warr < wts
        cont = []
        for i, hit in enumerate(hits.tolist()):
            jk = live[i]
            if hit:
                append((jk[0], entries[jk[1] - 1]))
            if jk[1] < n_i:
                cont.append(jk)
        if stats is not None:
            stats["bgeo_draws"] = stats.get("bgeo_draws", 0) + len(live)
        if not cont:
            return
        gwords = read_words(bits, len(cont), g)
        rems = n_i - np.array([jk[1] for jk in cont], dtype=np.int64)
        u = np.array(gwords, dtype=np.float64)
        # 0 = dead (chain left the bucket), 1 = live, 2 = resolve
        code = np.where(
            u < plos_np[rems], 0, np.where(u > phis_np[rems], 1, 2)
        )
        live = []
        for i, c in enumerate(code.tolist()):
            if c == 0:
                continue
            j, k = cont[i]
            rem = n_i - k
            if c == 2 and _resolve_lazy(
                gwords[i], g, pow_approx_fn(s_num, s_den, rem), source
            ) == 1:
                continue
            live.append(
                (j, k + fast_truncated_geometric(bplan, rem, source))
            )
