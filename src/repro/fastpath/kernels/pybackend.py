"""The zero-dependency kernel backend — and the stream-contract reference.

Each kernel here defines the *phase layout* of its batch: which logical
words are read in which order, and where the exact scalar resolutions
(:func:`~repro.fastpath.gate.bernoulli_given_u`,
:func:`~repro.fastpath.gate._resolve_lazy`,
:func:`~repro.fastpath.geom.fast_truncated_geometric`) interleave.  The
numpy backend must reproduce these decisions from the same word sequence
exactly; it falls back to the functions in this module verbatim for
batches too small to vectorize, which is only sound because the layouts
match.

Relative to the pre-kernel inline loops the layouts are *round-major*
instead of draw-major: a round reads one word per still-active draw in
one grouped fetch, then classifies and resolves in draw order.  Every bit
still feeds exactly one primitive of exactly one draw, so per-draw output
laws and cross-draw independence are untouched (the enumeration suites in
``tests/fastpath/test_columnar_law.py`` pin this on both backends).
"""

from __future__ import annotations

from ...obs.metrics import OBS as _OBS, REGISTRY as _REGISTRY
from ...randvar.approx import pow_approx_fn
from .. import gate
from ..gate import _resolve_lazy, bernoulli_given_u
from ..geom import fast_truncated_geometric
from . import METRIC_HELP, METRIC_NAME, pow_bounds, read_words

NAME = "python"

_ELEMS = _REGISTRY.counter(METRIC_NAME, METRIC_HELP, backend=NAME)


# -- K1: Algorithm 2 miss gates ----------------------------------------------


def miss_gate_hits(source, count: int, lo: float) -> list[tuple[int, int]]:
    """One miss-gate word per draw, read as one grouped phase; returns the
    ``(draw, word)`` pairs that did not decide "miss" outright (``u >=
    lo``), ascending, for the caller's exact per-draw resolution."""
    if _OBS.enabled:
        _ELEMS.value += count
    words = read_words(source.bits, count, gate.GATE_BITS)
    return [(j, u) for j, u in enumerate(words) if u >= lo]


# -- K2: alias-row batch draws -----------------------------------------------


def alias_draws(row, source, draw_indices, pairs) -> None:
    """One alias-row product-law draw per index in ``draw_indices``,
    appended to ``pairs`` as ``(draw, entry)``.

    Round layout: every still-pending draw's fused slot+gate word is read
    in one grouped fetch per rejection round (slot bits high, exactly the
    fused fetch the inline sampler used); accepted draws classify against
    the row's cached gate bounds and emit in draw order, with ambiguous
    slots resolved exactly in that same order.
    """
    if _OBS.enabled:
        _ELEMS.value += len(draw_indices)
    _alias_scalar(row, source, draw_indices, pairs)


def _alias_scalar(row, source, draw_indices, pairs) -> None:
    values = row.values
    size = len(values)
    if size == 1:
        picked = values[0]
        if picked:
            for j in draw_indices:
                for entry in picked:
                    pairs.append((j, entry))
        return
    g = gate.GATE_BITS
    los, his = row.gate_bounds(g, gate._SCALE)
    thresholds = row.thresholds
    aliases = row.aliases
    both = (size - 1).bit_length() + g
    g_mask = (1 << g) - 1
    bits = source.bits
    append = pairs.append
    pending = list(draw_indices)
    while pending:
        words = read_words(bits, len(pending), both)
        nxt = []
        for i, j in enumerate(pending):
            w = words[i]
            slot = w >> g
            if slot >= size:
                nxt.append(j)
                continue
            u = w & g_mask
            # Certain slots carry (+inf, -inf) bounds, so u < los[slot]
            # accepts them without consulting the (absent) threshold.
            if u < los[slot]:
                picked = values[slot]
            elif u > his[slot]:
                picked = values[aliases[slot]]
            else:
                thr = thresholds[slot]
                if bernoulli_given_u(u, thr.num, thr.den, source):
                    picked = values[slot]
                else:
                    picked = values[aliases[slot]]
            for entry in picked:
                append((j, entry))
        pending = nxt


# -- K3a: p' = 1 chains (dense accept-gate matrix) ---------------------------


def gate_rows(source, nrows, los, his, nums, den) -> list[list[int]]:
    """One gate word per (row, uncertain entry), row-major in one grouped
    fetch; returns each row's accepted entry indices ascending.  Ambiguous
    words resolve exactly in (row, entry) order after the read phase."""
    if _OBS.enabled:
        _ELEMS.value += nrows * len(los)
    words = read_words(source.bits, nrows * len(los), gate.GATE_BITS)
    return _gate_rows_words(words, nrows, los, his, nums, den, source)


def _gate_rows_words(
    words, nrows, los, his, nums, den, source
) -> list[list[int]]:
    m = len(los)
    out = []
    p = 0
    for _ in range(nrows):
        acc = []
        for idx in range(m):
            u = words[p]
            p += 1
            if u < los[idx] or (
                u <= his[idx]
                and bernoulli_given_u(u, nums[idx], den, source)
            ):
                acc.append(idx)
        out.append(acc)
    return out


# -- K3b: p' < 1/4 case-2 chains (prologue + advance rounds) -----------------


def chain_case2(
    bplan, entries, weights, shift, n_i, source, draws, pairs, stats
) -> None:
    """The grouped Algorithm 5 chain for a ``p' < 1/4`` bucket whose
    ``p'·n_i < 1`` (the production-dominant shape: every advance is the
    likely-miss one-word gate).

    Phase P reads each pending draw's fused index+gate prologue word per
    rejection round and classifies against the cached power-gate bounds;
    phase A then advances all surviving chains round by round — one
    weight word per live draw, then one miss-gate word per draw with
    positions remaining, exact tails and truncated-geometric relocations
    resolved in draw order.
    """
    if _OBS.enabled:
        _ELEMS.value += len(draws)
    _chain_case2_impl(
        bplan, entries, weights, shift, n_i, source, draws, pairs, stats
    )


def _chain_case2_impl(
    bplan, entries, weights, shift, n_i, source, draws, pairs, stats
) -> None:
    g = gate.GATE_BITS
    scale = gate._SCALE
    live = _case2_entry(bplan, n_i, source, draws, g, scale)
    if stats is not None:
        stats["tgeo_draws"] = stats.get("tgeo_draws", 0) + len(live)
    _advance_rounds(
        bplan, entries, weights, shift, n_i, source, live, pairs, stats
    )


def _case2_entry(bplan, n_i, source, draws, g, scale) -> list[tuple]:
    """Theorem 1.3 case 2.2 entry for every draw: uniform index accepted
    with ``Ber((1-p')^(k-1))``, fused fetch, round layout.  Returns the
    surviving ``(draw, k)`` chains."""
    if n_i == 1:
        return [(j, 1) for j in draws]
    plos, phis = pow_bounds(bplan, n_i, g, scale)
    both = (n_i - 1).bit_length() + g
    g_mask = (1 << g) - 1
    bits = source.bits
    s_num = bplan.s_num
    s_den = bplan.s_den
    live = []
    pending = draws
    while pending:
        words = read_words(bits, len(pending), both)
        nxt = []
        for i, j in enumerate(pending):
            w = words[i]
            v = w >> g
            if v >= n_i:
                nxt.append(j)
                continue
            if v:
                u = w & g_mask
                if u >= plos[v]:
                    if u > phis[v] or _resolve_lazy(
                        u, g, pow_approx_fn(s_num, s_den, v), source
                    ) != 1:
                        continue  # not promising: the draw emits nothing
            live.append((j, v + 1))
        pending = nxt
    return live


def _advance_rounds(
    bplan, entries, weights, shift, n_i, source, live, pairs, stats
) -> None:
    g = gate.GATE_BITS
    plos, phis = pow_bounds(bplan, n_i, g, gate._SCALE)
    bits = source.bits
    append = pairs.append
    s_num = bplan.s_num
    s_den = bplan.s_den
    while live:
        wwords = read_words(bits, len(live), shift)
        cont = []
        for i, jk in enumerate(live):
            k = jk[1]
            if wwords[i] < weights[k - 1]:
                append((jk[0], entries[k - 1]))
            if k < n_i:
                cont.append(jk)
        if stats is not None:
            stats["bgeo_draws"] = stats.get("bgeo_draws", 0) + len(live)
        if not cont:
            return
        gwords = read_words(bits, len(cont), g)
        live = []
        for i, (j, k) in enumerate(cont):
            rem = n_i - k
            u = gwords[i]
            if u < plos[rem]:
                continue  # past the end: the chain leaves the bucket
            if u <= phis[rem] and _resolve_lazy(
                u, g, pow_approx_fn(s_num, s_den, rem), source
            ) == 1:
                continue
            live.append(
                (j, k + fast_truncated_geometric(bplan, rem, source))
            )
